//! Microbenchmarks of the transform kernels: direct vs FFT vs fast
//! m-sequence correlation, and the FWHT butterfly itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ims_prs::{FastMTransform, MSequence, SimplexMatrix};
use ims_signal::correlate::{circular_correlate_direct, circular_correlate_fft};
use ims_signal::fwht::fwht;
use std::hint::black_box;

fn signal(n: usize) -> Vec<f64> {
    (0..n).map(|k| ((k * 37 + 11) % 101) as f64).collect()
}

fn bench_correlation(c: &mut Criterion) {
    let mut group = c.benchmark_group("msequence_deconvolution");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for degree in [7u32, 9, 11] {
        let seq = MSequence::new(degree);
        let n = seq.len();
        let y = signal(n);
        let pm1 = seq.as_pm1();
        let transform = FastMTransform::new(&seq);
        let simplex = SimplexMatrix::new(seq.clone());

        if degree <= 9 {
            group.bench_with_input(BenchmarkId::new("direct_O(N2)", n), &n, |b, _| {
                b.iter(|| black_box(circular_correlate_direct(&pm1, &y)))
            });
        }
        group.bench_with_input(BenchmarkId::new("fft_O(NlogN)", n), &n, |b, _| {
            b.iter(|| black_box(circular_correlate_fft(&pm1, &y)))
        });
        group.bench_with_input(BenchmarkId::new("fast_hadamard", n), &n, |b, _| {
            b.iter(|| black_box(transform.deconvolve(&y)))
        });
        if degree <= 9 {
            group.bench_with_input(BenchmarkId::new("simplex_inverse_O(N2)", n), &n, |b, _| {
                b.iter(|| black_box(simplex.inverse_apply(&y)))
            });
        }
    }
    group.finish();
}

fn bench_fwht(c: &mut Criterion) {
    let mut group = c.benchmark_group("fwht");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for bits in [8u32, 10, 12, 14] {
        let m = 1usize << bits;
        let x = signal(m);
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| {
                let mut buf = x.clone();
                fwht(&mut buf);
                black_box(buf)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_correlation, bench_fwht);
criterion_main!(benches);
