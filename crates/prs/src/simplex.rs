//! Cyclic simplex (S-) matrices and their closed-form inverse.
//!
//! The encoding matrix of an HT-IMS experiment is the left-circulant 0/1
//! matrix `S[i][j] = a[(i + j) mod N]` built from an m-sequence `a`. The
//! detector observes `y = S·x` (each drift-time bin `i` sums the analytes
//! injected by every gate opening that can arrive at time `i`).
//!
//! Because of the two-level autocorrelation of `a`, the inverse exists in
//! closed form:
//!
//! ```text
//! S⁻¹ = 2/(N+1) · (2·S − J)ᵀ        (J = all-ones matrix)
//! ```
//!
//! so deconvolution is a circular correlation with the ±1 version of the
//! sequence plus a rank-one correction — `O(N²)` directly, `O(N log N)` via
//! the fast transform in [`crate::permutation`].

use crate::msequence::MSequence;
use ims_signal::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// A cyclic simplex encoding matrix, stored implicitly as its m-sequence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimplexMatrix {
    seq: MSequence,
}

impl SimplexMatrix {
    /// Builds the S-matrix of the given m-sequence.
    pub fn new(seq: MSequence) -> Self {
        Self { seq }
    }

    /// Builds the S-matrix for the tabulated polynomial of a degree.
    pub fn for_degree(degree: u32) -> Self {
        Self::new(MSequence::new(degree))
    }

    /// Matrix order `N`.
    pub fn order(&self) -> usize {
        self.seq.len()
    }

    /// The generating m-sequence.
    pub fn sequence(&self) -> &MSequence {
        &self.seq
    }

    /// Entry `S[i][j] = a[(i + j) mod N]` as 0/1.
    pub fn entry(&self, i: usize, j: usize) -> f64 {
        if self.seq.bit(i + j) {
            1.0
        } else {
            0.0
        }
    }

    /// Dense materialisation (tests and the FPGA MAC-array model only;
    /// `O(N²)` memory).
    pub fn to_dense(&self) -> Matrix {
        let n = self.order();
        Matrix::from_fn(n, n, |i, j| self.entry(i, j))
    }

    /// Dense closed-form inverse `2/(N+1)·(2S − J)ᵀ`.
    pub fn inverse_dense(&self) -> Matrix {
        let n = self.order();
        let scale = 2.0 / (n as f64 + 1.0);
        Matrix::from_fn(n, n, |i, j| scale * (2.0 * self.entry(j, i) - 1.0))
    }

    /// Applies the encoding: `y = S·x` (the forward model of the
    /// multiplexed experiment), `O(N²)`.
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        let n = self.order();
        assert_eq!(x.len(), n, "dimension mismatch");
        (0..n)
            .map(|i| {
                let mut acc = 0.0;
                for (j, &xv) in x.iter().enumerate() {
                    if self.seq.bit(i + j) {
                        acc += xv;
                    }
                }
                acc
            })
            .collect()
    }

    /// Applies the closed-form inverse: `x̂ = S⁻¹·y`, `O(N²)`.
    ///
    /// `x̂[j] = 2/(N+1) · (2·Σᵢ a[i+j]·y[i] − Σᵢ y[i])`.
    pub fn inverse_apply(&self, y: &[f64]) -> Vec<f64> {
        let n = self.order();
        assert_eq!(y.len(), n, "dimension mismatch");
        let total: f64 = y.iter().sum();
        let scale = 2.0 / (n as f64 + 1.0);
        (0..n)
            .map(|j| {
                let mut corr = 0.0;
                for (i, &yv) in y.iter().enumerate() {
                    if self.seq.bit(i + j) {
                        corr += yv;
                    }
                }
                scale * (2.0 * corr - total)
            })
            .collect()
    }

    /// The gate-open pattern seen at encoding step `i` (row `i` of `S`).
    pub fn row_bits(&self, i: usize) -> Vec<bool> {
        let n = self.order();
        (0..n).map(|j| self.seq.bit(i + j)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_form_inverse_is_exact() {
        for degree in 2..=8 {
            let s = SimplexMatrix::for_degree(degree);
            let dense = s.to_dense();
            let inv = s.inverse_dense();
            let n = s.order();
            let eye = dense.matmul(&inv);
            assert!(
                eye.max_abs_diff(&Matrix::identity(n)) < 1e-9,
                "degree {degree}: S·S⁻¹ ≠ I"
            );
            let eye2 = inv.matmul(&dense);
            assert!(eye2.max_abs_diff(&Matrix::identity(n)) < 1e-9);
        }
    }

    #[test]
    fn inverse_apply_matches_dense_inverse() {
        let s = SimplexMatrix::for_degree(6);
        let n = s.order();
        let y: Vec<f64> = (0..n).map(|i| ((i * 7) % 13) as f64 - 3.0).collect();
        let fast = s.inverse_apply(&y);
        let dense = s.inverse_dense().matvec(&y);
        for (a, b) in fast.iter().zip(dense.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let s = SimplexMatrix::for_degree(7);
        let n = s.order();
        let mut x = vec![0.0; n];
        x[5] = 100.0;
        x[60] = 42.0;
        x[100] = 7.5;
        let y = s.apply(&x);
        let back = s.inverse_apply(&y);
        for (i, (a, b)) in x.iter().zip(back.iter()).enumerate() {
            assert!((a - b).abs() < 1e-8, "bin {i}: {a} vs {b}");
        }
    }

    #[test]
    fn apply_matches_dense_matvec() {
        let s = SimplexMatrix::for_degree(5);
        let n = s.order();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let fast = s.apply(&x);
        let dense = s.to_dense().matvec(&x);
        for (a, b) in fast.iter().zip(dense.iter()) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn rows_have_balanced_weight() {
        let s = SimplexMatrix::for_degree(6);
        let n = s.order();
        for i in 0..n {
            let weight = s.row_bits(i).iter().filter(|&&b| b).count();
            assert_eq!(weight, n.div_ceil(2), "row {i}");
        }
    }

    #[test]
    fn encoding_conserves_counts_up_to_duty_cycle() {
        // Column sums of S are (N+1)/2, so Σy = (N+1)/2 · Σx.
        let s = SimplexMatrix::for_degree(6);
        let n = s.order();
        let x = vec![1.0; n];
        let y = s.apply(&x);
        let total: f64 = y.iter().sum();
        let expect = (n as f64 + 1.0) / 2.0 * n as f64;
        assert!((total - expect).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn apply_checks_length() {
        let s = SimplexMatrix::for_degree(4);
        let _ = s.apply(&[1.0, 2.0]);
    }
}
