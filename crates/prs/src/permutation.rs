//! The fast m-sequence transform: circular correlation with an m-sequence in
//! `O(M log M)` via the Walsh–Hadamard butterfly and two LFSR-derived index
//! tables.
//!
//! This is the algorithmic core of the paper's FPGA deconvolution engine.
//! The abstract highlights the "computational and memory addressing logic"
//! of that engine: the computation is the FWHT butterfly, and the memory
//! addressing is precisely the two permutation tables built here —
//!
//! * the **scatter table** (`states`): detector sample `k` is written to
//!   RAM address `s_k`, the `k`-th LFSR state;
//! * the **gather table** (`masks`): deconvolved drift bin `j` is read from
//!   RAM address `m_j`, where `⟨m_j, s⟩` is the sequence bit emitted `j`
//!   steps after state `s`.
//!
//! ## Why this works
//!
//! Let `a` be the m-sequence and `s_k` the Fibonacci LFSR state sequence
//! with the convention that state bit `i` holds the output due `i` steps
//! later (`a[k+i] = bit_i(s_k)` for `i < n`). Then `a[k+j] = ⟨m_j, s_k⟩`
//! for every `j`, with `m_j = eⱼ` for `j < n` and `m_{j+1} = Aᵀ m_j` in
//! general (`A` = state-transition matrix). Hence the ±1 correlation
//!
//! ```text
//! c[j] = Σ_k (−1)^{a[k+j]}·y[k] = Σ_{s≠0} (−1)^{⟨m_j, s⟩}·ỹ[s] = WHT(ỹ)[m_j]
//! ```
//!
//! where `ỹ` scatters `y` by LFSR state. One `O(M log M)` FWHT therefore
//! evaluates the correlation at *all* lags simultaneously, and the simplex
//! inverse follows as `x̂[j] = −2·c[j]/(N+1)`.

use crate::lfsr::Lfsr;
use crate::msequence::MSequence;
use ims_signal::fwht::fwht;
use serde::{Deserialize, Serialize};

/// Reusable scratch arena for the allocation-free fast-transform variants.
///
/// Holds the FWHT working buffer (scalar: `M = N + 1` values; panel:
/// `M × width`). Grows to the largest shape seen and is then reused without
/// further allocation — the batched deconvolution engine keeps one per
/// worker thread.
#[derive(Debug, Clone, Default)]
pub struct TransformScratch {
    buf: Vec<f64>,
}

/// Precomputed fast transform for a fixed m-sequence.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FastMTransform {
    degree: u32,
    /// Sequence length `N = 2ⁿ − 1`.
    n: usize,
    /// Scatter table: sample `k` → RAM address `states[k]` (the LFSR state).
    states: Vec<u32>,
    /// Gather table: drift bin `j` ← RAM address `masks[j]`.
    masks: Vec<u32>,
    /// Gather table for the *convolution* forward model, cached so the
    /// per-column index reversal `masks[(N − j) mod N]` is not recomputed
    /// per column: `conv_masks[j] = masks[(N − j) mod N]`.
    conv_masks: Vec<u32>,
}

impl FastMTransform {
    /// Builds the transform (and its two address tables) for an m-sequence.
    pub fn new(seq: &MSequence) -> Self {
        let poly = seq.poly();
        let degree = poly.degree();
        let n = poly.sequence_length();
        let lfsr = Lfsr::new(poly);
        let states = lfsr.state_sequence();

        // Columns of the transition matrix A: images of the basis vectors.
        let cols: Vec<u32> = (0..degree).map(|b| lfsr.advance_state(1 << b)).collect();
        // Aᵀ action on a mask: bit b of the result = ⟨mask, A·e_b⟩.
        let at_apply = |mask: u32| -> u32 {
            let mut out = 0u32;
            for (b, &col) in cols.iter().enumerate() {
                if (mask & col).count_ones() % 2 == 1 {
                    out |= 1 << b;
                }
            }
            out
        };

        let mut masks = Vec::with_capacity(n);
        let mut m = 1u32; // m_0: output functional = lsb
        for j in 0..n {
            if j < degree as usize {
                m = 1 << j;
            } else if j == degree as usize {
                // Restart the iteration from m_{n-1} = e_{n-1}.
                m = at_apply(1 << (degree - 1));
            } else {
                m = at_apply(m);
            }
            masks.push(m);
        }
        let conv_masks: Vec<u32> = (0..n).map(|j| masks[(n - j) % n]).collect();
        Self {
            degree,
            n,
            states,
            masks,
            conv_masks,
        }
    }

    /// Sequence length `N`.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false (minimum order is 3).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// FWHT working-buffer size `M = N + 1 = 2ⁿ`.
    pub fn buffer_len(&self) -> usize {
        self.n + 1
    }

    /// The scatter address table (`k` → RAM address), as burned into the
    /// FPGA's address ROM.
    pub fn scatter_addresses(&self) -> &[u32] {
        &self.states
    }

    /// The gather address table (`j` ← RAM address).
    pub fn gather_addresses(&self) -> &[u32] {
        &self.masks
    }

    /// The cached gather table for the convolution forward model
    /// (`conv_masks[j] = masks[(N − j) mod N]`).
    pub fn convolution_gather_addresses(&self) -> &[u32] {
        &self.conv_masks
    }

    /// Correlation with the ±1 sequence: `c[j] = Σ_k (−1)^{a[k+j]}·y[k]`.
    pub fn correlate_pm1(&self, y: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.n];
        self.correlate_pm1_into(y, &mut out, &mut TransformScratch::default());
        out
    }

    /// Allocation-free [`FastMTransform::correlate_pm1`]: writes the
    /// correlation into `out`, reusing `scratch` for the FWHT buffer.
    ///
    /// # Panics
    /// Panics if `y.len()` or `out.len()` differs from the sequence length.
    pub fn correlate_pm1_into(&self, y: &[f64], out: &mut [f64], scratch: &mut TransformScratch) {
        assert_eq!(y.len(), self.n, "dimension mismatch");
        assert_eq!(out.len(), self.n, "output dimension mismatch");
        scratch.buf.resize(self.buffer_len(), 0.0);
        // The scatter table is a permutation of 1..=N, so every address
        // except 0 is overwritten; only address 0 needs explicit zeroing.
        scratch.buf[0] = 0.0;
        for (k, &addr) in self.states.iter().enumerate() {
            scratch.buf[addr as usize] = y[k];
        }
        fwht(&mut scratch.buf);
        for (o, &m) in out.iter_mut().zip(self.masks.iter()) {
            *o = scratch.buf[m as usize];
        }
    }

    /// Correlation with the 0/1 sequence: `Σ_k a[k+j]·y[k]`.
    pub fn correlate01(&self, y: &[f64]) -> Vec<f64> {
        let total: f64 = y.iter().sum();
        self.correlate_pm1(y)
            .into_iter()
            .map(|c| (total - c) / 2.0)
            .collect()
    }

    /// Applies the simplex inverse `x̂ = S⁻¹·y` in `O(M log M)`:
    /// `x̂[j] = −2·c[j]/(N+1)`.
    pub fn deconvolve(&self, y: &[f64]) -> Vec<f64> {
        let scale = -2.0 / (self.n as f64 + 1.0);
        self.correlate_pm1(y)
            .into_iter()
            .map(|c| scale * c)
            .collect()
    }

    /// Allocation-free [`FastMTransform::deconvolve`].
    pub fn deconvolve_into(&self, y: &[f64], out: &mut [f64], scratch: &mut TransformScratch) {
        self.correlate_pm1_into(y, out, scratch);
        let scale = -2.0 / (self.n as f64 + 1.0);
        for v in out.iter_mut() {
            // f64 `*` is bitwise-commutative, so this matches the scalar
            // path's `scale * v` exactly.
            *v *= scale;
        }
    }

    /// Deconvolves data produced by the *convolution* forward model
    /// `y = a ∗ x` (gate event at step `i − j` reaches the detector at step
    /// `i`), which is the physical time ordering of the instrument.
    ///
    /// The right-circulant matrix `S'[i][j] = a[(i−j) mod N]` obeys the same
    /// closed-form inverse as the simplex matrix; in terms of the fast ±1
    /// correlation it is an index reversal: `x̂[j] = −2·c[(N−j) mod N]/(N+1)`.
    pub fn deconvolve_convolution(&self, y: &[f64]) -> Vec<f64> {
        let c = self.correlate_pm1(y);
        let n = self.n;
        let scale = -2.0 / (n as f64 + 1.0);
        (0..n).map(|j| scale * c[(n - j) % n]).collect()
    }

    /// Allocation-free [`FastMTransform::deconvolve_convolution`]: gathers
    /// the reversed lags straight from the FWHT buffer through the cached
    /// `conv_masks` table, skipping the intermediate correlation vector.
    ///
    /// # Panics
    /// Panics if `y.len()` or `out.len()` differs from the sequence length.
    pub fn deconvolve_convolution_into(
        &self,
        y: &[f64],
        out: &mut [f64],
        scratch: &mut TransformScratch,
    ) {
        assert_eq!(y.len(), self.n, "dimension mismatch");
        assert_eq!(out.len(), self.n, "output dimension mismatch");
        scratch.buf.resize(self.buffer_len(), 0.0);
        scratch.buf[0] = 0.0;
        for (k, &addr) in self.states.iter().enumerate() {
            scratch.buf[addr as usize] = y[k];
        }
        fwht(&mut scratch.buf);
        let scale = -2.0 / (self.n as f64 + 1.0);
        for (o, &m) in out.iter_mut().zip(self.conv_masks.iter()) {
            *o = scale * scratch.buf[m as usize];
        }
    }

    /// Batched [`FastMTransform::deconvolve_convolution`] over a panel of
    /// `width` independent columns, in place.
    ///
    /// `panel` holds `N × width` values in row-major order (drift bin `r`
    /// of column `c` at `panel[r*width + c]`). The scatter/gather address
    /// tables move whole contiguous rows, and the butterfly runs through
    /// [`fwht_panel`] — unit-stride, auto-vectorized across columns, and
    /// **bit-identical** per column to the scalar path.
    ///
    /// # Panics
    /// Panics if `width` is zero or `panel.len() != N * width`.
    pub fn deconvolve_convolution_panel(
        &self,
        panel: &mut [f64],
        width: usize,
        scratch: &mut TransformScratch,
    ) {
        self.deconvolve_convolution_panel_with(ims_signal::simd::active(), panel, width, scratch);
    }

    /// [`FastMTransform::deconvolve_convolution_panel`] pinned to an
    /// explicit SIMD backend (testing hook; every backend is
    /// bit-identical).
    ///
    /// # Panics
    /// As [`FastMTransform::deconvolve_convolution_panel`].
    pub fn deconvolve_convolution_panel_with(
        &self,
        be: ims_signal::simd::Backend,
        panel: &mut [f64],
        width: usize,
        scratch: &mut TransformScratch,
    ) {
        assert!(width > 0, "panel width must be positive");
        assert_eq!(
            panel.len(),
            self.n * width,
            "panel shape mismatch: {} values for {} rows x {width} columns",
            panel.len(),
            self.n
        );
        let m = self.buffer_len();
        scratch.buf.resize(m * width, 0.0);
        // Row 0 (RAM address 0) is the only row the scatter never writes.
        scratch.buf[..width].fill(0.0);
        for (k, &addr) in self.states.iter().enumerate() {
            let a = addr as usize;
            scratch.buf[a * width..(a + 1) * width]
                .copy_from_slice(&panel[k * width..(k + 1) * width]);
        }
        ims_signal::fwht::fwht_panel_with(be, &mut scratch.buf, width);
        let scale = -2.0 / (self.n as f64 + 1.0);
        for (j, &addr) in self.conv_masks.iter().enumerate() {
            let a = addr as usize;
            let src = &scratch.buf[a * width..(a + 1) * width];
            let dst = &mut panel[j * width..(j + 1) * width];
            ims_signal::simd::mul_rows_f64(be, dst, src, scale);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::SimplexMatrix;
    use ims_signal::correlate::circular_correlate_direct;
    use std::collections::HashSet;

    fn test_signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|k| ((k * 37 + 11) % 101) as f64 - 50.0)
            .collect()
    }

    #[test]
    fn masks_recover_future_sequence_bits() {
        // ⟨m_j, s_k⟩ must equal a[k + j] for all k, j.
        let seq = MSequence::new(6);
        let t = FastMTransform::new(&seq);
        for (k, &s) in t.scatter_addresses().iter().enumerate() {
            for (j, &m) in t.gather_addresses().iter().enumerate() {
                let predicted = (m & s).count_ones() % 2 == 1;
                assert_eq!(
                    predicted,
                    seq.bit(k + j),
                    "state {k}, lag {j}: mask prediction wrong"
                );
            }
        }
    }

    #[test]
    fn pm1_correlation_matches_direct() {
        for degree in 2..=9 {
            let seq = MSequence::new(degree);
            let t = FastMTransform::new(&seq);
            let y = test_signal(seq.len());
            let fast = t.correlate_pm1(&y);
            let direct = circular_correlate_direct(&seq.as_pm1(), &y);
            for (j, (a, b)) in fast.iter().zip(direct.iter()).enumerate() {
                assert!((a - b).abs() < 1e-8, "degree {degree} lag {j}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn zero_one_correlation_matches_direct() {
        let seq = MSequence::new(7);
        let t = FastMTransform::new(&seq);
        let y = test_signal(seq.len());
        let fast = t.correlate01(&y);
        let direct = circular_correlate_direct(&seq.as_f64(), &y);
        for (a, b) in fast.iter().zip(direct.iter()) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn deconvolve_matches_simplex_inverse() {
        for degree in 2..=9 {
            let seq = MSequence::new(degree);
            let s = SimplexMatrix::new(seq.clone());
            let t = FastMTransform::new(&seq);
            let y = test_signal(seq.len());
            let fast = t.deconvolve(&y);
            let slow = s.inverse_apply(&y);
            for (j, (a, b)) in fast.iter().zip(slow.iter()).enumerate() {
                assert!((a - b).abs() < 1e-8, "degree {degree} bin {j}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn encode_fast_decode_round_trip() {
        let seq = MSequence::new(8);
        let s = SimplexMatrix::new(seq.clone());
        let t = FastMTransform::new(&seq);
        let n = seq.len();
        let mut x = vec![0.0; n];
        x[3] = 10.0;
        x[77] = 2.5;
        x[200] = 33.0;
        let y = s.apply(&x);
        let back = t.deconvolve(&y);
        for (i, (a, b)) in x.iter().zip(back.iter()).enumerate() {
            assert!((a - b).abs() < 1e-7, "bin {i}: {a} vs {b}");
        }
    }

    #[test]
    fn convolution_deconvolve_inverts_circular_convolution() {
        use ims_signal::correlate::circular_convolve_direct;
        for degree in [4u32, 7, 9] {
            let seq = MSequence::new(degree);
            let t = FastMTransform::new(&seq);
            let n = seq.len();
            let mut x = vec![0.0; n];
            x[1] = 5.0;
            x[n / 2] = 11.0;
            x[n - 2] = 0.75;
            let y = circular_convolve_direct(&seq.as_f64(), &x);
            let back = t.deconvolve_convolution(&y);
            for (i, (a, b)) in x.iter().zip(back.iter()).enumerate() {
                assert!((a - b).abs() < 1e-7, "degree {degree} bin {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn into_variants_are_bit_identical_to_allocating() {
        let seq = MSequence::new(8);
        let t = FastMTransform::new(&seq);
        let n = seq.len();
        let y = test_signal(n);
        let mut scratch = TransformScratch::default();
        let mut out = vec![0.0; n];

        t.correlate_pm1_into(&y, &mut out, &mut scratch);
        for (a, b) in out.iter().zip(t.correlate_pm1(&y).iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        t.deconvolve_into(&y, &mut out, &mut scratch);
        for (a, b) in out.iter().zip(t.deconvolve(&y).iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        t.deconvolve_convolution_into(&y, &mut out, &mut scratch);
        for (a, b) in out.iter().zip(t.deconvolve_convolution(&y).iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn convolution_panel_is_bit_identical_to_per_column() {
        for degree in [4u32, 7] {
            let seq = MSequence::new(degree);
            let t = FastMTransform::new(&seq);
            let n = seq.len();
            for width in [1usize, 3, 8] {
                // Column c carries a distinct signal.
                let columns: Vec<Vec<f64>> = (0..width)
                    .map(|c| {
                        (0..n)
                            .map(|k| ((k * 31 + c * 17 + 5) % 97) as f64 - 48.0)
                            .collect()
                    })
                    .collect();
                let mut panel = vec![0.0; n * width];
                for (c, col) in columns.iter().enumerate() {
                    for (r, &v) in col.iter().enumerate() {
                        panel[r * width + c] = v;
                    }
                }
                let mut scratch = TransformScratch::default();
                t.deconvolve_convolution_panel(&mut panel, width, &mut scratch);
                for (c, col) in columns.iter().enumerate() {
                    let oracle = t.deconvolve_convolution(col);
                    for r in 0..n {
                        assert_eq!(
                            panel[r * width + c].to_bits(),
                            oracle[r].to_bits(),
                            "degree {degree} width {width} at ({r},{c})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn scratch_reuse_across_shapes_is_safe() {
        // A scratch grown by a wide panel must still give exact results for
        // narrower panels and scalar calls afterwards.
        let seq = MSequence::new(5);
        let t = FastMTransform::new(&seq);
        let n = seq.len();
        let mut scratch = TransformScratch::default();
        let mut wide = vec![1.0; n * 8];
        t.deconvolve_convolution_panel(&mut wide, 8, &mut scratch);
        let y = test_signal(n);
        let mut narrow: Vec<f64> = y.clone();
        t.deconvolve_convolution_panel(&mut narrow, 1, &mut scratch);
        let oracle = t.deconvolve_convolution(&y);
        for (a, b) in narrow.iter().zip(oracle.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn conv_gather_table_matches_index_reversal() {
        let seq = MSequence::new(6);
        let t = FastMTransform::new(&seq);
        let n = t.len();
        let masks = t.gather_addresses();
        let conv = t.convolution_gather_addresses();
        for j in 0..n {
            assert_eq!(conv[j], masks[(n - j) % n]);
        }
    }

    #[test]
    fn address_tables_are_permutation_like() {
        let seq = MSequence::new(10);
        let t = FastMTransform::new(&seq);
        let scatter: HashSet<u32> = t.scatter_addresses().iter().copied().collect();
        assert_eq!(scatter.len(), t.len()); // all distinct
        assert!(!scatter.contains(&0)); // address 0 stays zero-filled
        let gather: HashSet<u32> = t.gather_addresses().iter().copied().collect();
        assert_eq!(gather.len(), t.len());
        assert!(!gather.contains(&0));
        assert!(t
            .gather_addresses()
            .iter()
            .all(|&m| (m as usize) < t.buffer_len()));
    }
}
