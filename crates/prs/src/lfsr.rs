//! Linear-feedback shift registers.
//!
//! Two classic topologies are provided:
//!
//! * [`Lfsr`] — Fibonacci (many-to-one): the next input bit is the parity of
//!   the tapped state bits. Its state sequence is what the fast m-sequence
//!   transform (and the FPGA address generator modelled on it) walks.
//! * [`GaloisLfsr`] — Galois (one-to-many): mathematically a multiplication
//!   by `x` in GF(2ⁿ); cheaper per step and used where only the output
//!   stream matters.
//!
//! Both produce maximal-length output when loaded with a primitive
//! polynomial; the unit tests verify the full period for every tabulated
//! degree.

use crate::poly::PrimitivePoly;
use serde::{Deserialize, Serialize};

/// Fibonacci LFSR over GF(2) with up to 20 state bits.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Lfsr {
    poly: PrimitivePoly,
    state: u32,
    /// Feedback mask over the state bits: bit `i` ⇔ coefficient of `x^i` in
    /// the polynomial (including the constant term), restricted to `i < n`.
    fb_mask: u32,
}

impl Lfsr {
    /// Creates an LFSR with the canonical seed `1`.
    pub fn new(poly: PrimitivePoly) -> Self {
        Self::with_seed(poly, 1)
    }

    /// Creates an LFSR with an explicit non-zero seed (masked to the degree).
    ///
    /// # Panics
    /// Panics if the masked seed is zero (the LFSR would be stuck).
    pub fn with_seed(poly: PrimitivePoly, seed: u32) -> Self {
        let mask = (1u32 << poly.degree()) - 1;
        let state = seed & mask;
        assert!(state != 0, "LFSR seed must be non-zero after masking");
        // With state bit i holding the output due in i steps (s_i(t) =
        // o_{t+i}), the recurrence o_{t+n} = Σ_{x^i ∈ p, i<n} o_{t+i} has
        // characteristic polynomial exactly p, hence maximal period.
        let fb_mask = ((poly.taps() << 1) | 1) & mask;
        Self {
            poly,
            state,
            fb_mask,
        }
    }

    /// The generating polynomial.
    pub fn poly(&self) -> PrimitivePoly {
        self.poly
    }

    /// Current register state.
    pub fn state(&self) -> u32 {
        self.state
    }

    /// Output functional: the emitted bit is the least-significant state bit.
    pub fn output_mask() -> u32 {
        1
    }

    /// Advances one step, returning the output bit.
    ///
    /// Right-shift topology: output = bit 0; the feedback parity of the
    /// tapped bits enters at bit `n−1`.
    pub fn step(&mut self) -> bool {
        let out = self.state & 1 == 1;
        let fb = (self.state & self.fb_mask).count_ones() & 1;
        self.state = (self.state >> 1) | (fb << (self.poly.degree() - 1));
        out
    }

    /// Emits the next `count` output bits.
    pub fn bits(&mut self, count: usize) -> Vec<bool> {
        (0..count).map(|_| self.step()).collect()
    }

    /// The state-transition map as a function of an arbitrary state (pure,
    /// does not touch `self`). Used to build the linear-algebra view of the
    /// automaton.
    pub fn advance_state(&self, state: u32) -> u32 {
        let fb = (state & self.fb_mask).count_ones() & 1;
        (state >> 1) | (fb << (self.poly.degree() - 1))
    }

    /// Visits all `2ⁿ − 1` states starting from the current one, in step
    /// order, leaving the register back where it started.
    pub fn state_sequence(&self) -> Vec<u32> {
        let n = self.poly.sequence_length();
        let mut states = Vec::with_capacity(n);
        let mut s = self.state;
        for _ in 0..n {
            states.push(s);
            s = self.advance_state(s);
        }
        states
    }
}

/// Galois LFSR over GF(2).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GaloisLfsr {
    poly: PrimitivePoly,
    state: u32,
}

impl GaloisLfsr {
    /// Creates a Galois LFSR with the canonical seed `1`.
    pub fn new(poly: PrimitivePoly) -> Self {
        Self::with_seed(poly, 1)
    }

    /// Creates a Galois LFSR with an explicit non-zero seed (masked to the
    /// degree).
    ///
    /// # Panics
    /// Panics if the masked seed is zero (the LFSR would be stuck).
    pub fn with_seed(poly: PrimitivePoly, seed: u32) -> Self {
        let mask = (1u32 << poly.degree()) - 1;
        let state = seed & mask;
        assert!(state != 0, "LFSR seed must be non-zero after masking");
        Self { poly, state }
    }

    /// Current register state.
    pub fn state(&self) -> u32 {
        self.state
    }

    /// Advances one step, returning the output bit (the bit shifted out of
    /// the top of the register).
    pub fn step(&mut self) -> bool {
        let n = self.poly.degree();
        let out = (self.state >> (n - 1)) & 1 == 1;
        self.state <<= 1;
        if out {
            // Reduce modulo the full polynomial (taps<<1 | 1 spans x^n…x^0).
            self.state ^= (self.poly.taps() << 1) | 1;
        }
        self.state &= (1u32 << n) - 1;
        out
    }

    /// Emits the next `count` output bits.
    pub fn bits(&mut self, count: usize) -> Vec<bool> {
        (0..count).map(|_| self.step()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poly::{MAX_DEGREE, MIN_DEGREE};
    use std::collections::HashSet;

    #[test]
    fn fibonacci_has_maximal_period_for_all_degrees() {
        for degree in MIN_DEGREE..=MAX_DEGREE.min(16) {
            let poly = PrimitivePoly::for_degree(degree);
            let mut lfsr = Lfsr::new(poly);
            let start = lfsr.state();
            let period = poly.sequence_length();
            for step in 1..=period {
                lfsr.step();
                if lfsr.state() == start {
                    assert_eq!(step, period, "degree {degree}: short period {step}");
                    break;
                }
                assert!(step < period, "degree {degree}: period exceeds maximum");
            }
        }
    }

    #[test]
    fn galois_has_maximal_period_for_all_degrees() {
        for degree in MIN_DEGREE..=MAX_DEGREE.min(16) {
            let poly = PrimitivePoly::for_degree(degree);
            let mut lfsr = GaloisLfsr::new(poly);
            let period = poly.sequence_length();
            let mut seen = 0usize;
            loop {
                lfsr.step();
                seen += 1;
                if lfsr.state() == 1 {
                    break;
                }
                assert!(seen <= period, "degree {degree}: period exceeds maximum");
            }
            assert_eq!(seen, period, "degree {degree}");
        }
    }

    #[test]
    fn state_sequence_visits_all_nonzero_states() {
        let poly = PrimitivePoly::for_degree(8);
        let lfsr = Lfsr::new(poly);
        let states = lfsr.state_sequence();
        assert_eq!(states.len(), 255);
        let unique: HashSet<u32> = states.iter().copied().collect();
        assert_eq!(unique.len(), 255);
        assert!(!unique.contains(&0));
        assert!(states.iter().all(|&s| s < 256));
    }

    #[test]
    fn output_bit_is_lsb_of_state() {
        let poly = PrimitivePoly::for_degree(6);
        let mut lfsr = Lfsr::new(poly);
        for _ in 0..200 {
            let lsb = lfsr.state() & 1 == 1;
            assert_eq!(lfsr.step(), lsb);
        }
    }

    #[test]
    fn seed_shifts_sequence_cyclically() {
        let poly = PrimitivePoly::for_degree(5);
        let n = poly.sequence_length();
        let mut base = Lfsr::new(poly);
        let seq: Vec<bool> = base.bits(n);
        // A seed equal to some mid-sequence state must produce a rotation.
        let mut probe = Lfsr::new(poly);
        for _ in 0..7 {
            probe.step();
        }
        let rotated_seed = probe.state();
        let mut shifted = Lfsr::with_seed(poly, rotated_seed);
        let got: Vec<bool> = shifted.bits(n);
        let expect: Vec<bool> = (0..n).map(|k| seq[(k + 7) % n]).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn advance_state_matches_step() {
        let poly = PrimitivePoly::for_degree(9);
        let mut lfsr = Lfsr::new(poly);
        for _ in 0..100 {
            let predicted = lfsr.advance_state(lfsr.state());
            lfsr.step();
            assert_eq!(lfsr.state(), predicted);
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_seed_rejected() {
        let poly = PrimitivePoly::for_degree(4);
        let _ = Lfsr::with_seed(poly, 0b10000); // masks to zero
    }
}
