//! Maximal-length sequences (m-sequences) and their defining properties.
//!
//! An m-sequence of degree `n` is the period-`N = 2ⁿ − 1` output of a
//! maximal LFSR. Three properties make it the gating sequence of choice for
//! Hadamard-transform IMS:
//!
//! * **balance** — exactly `(N+1)/2` ones: the ion gate is open half the
//!   time, which is where the multiplexing throughput comes from;
//! * **two-level autocorrelation** — the 0/1 sequence correlates with itself
//!   to `(N+1)/2` at zero lag and `(N+1)/4` everywhere else, which makes the
//!   encoding matrix invertible in closed form;
//! * **shift-and-add** — the XOR of the sequence with any non-trivial cyclic
//!   shift of itself is another cyclic shift, the algebraic skeleton behind
//!   the fast (Walsh–Hadamard) deconvolution.

use crate::lfsr::Lfsr;
use crate::poly::PrimitivePoly;
use serde::{Deserialize, Serialize};

/// A maximal-length binary sequence of period `2ⁿ − 1`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MSequence {
    poly: PrimitivePoly,
    bits: Vec<bool>,
}

impl MSequence {
    /// Generates the m-sequence of the given degree from the tabulated
    /// primitive polynomial, seed 1.
    pub fn new(degree: u32) -> Self {
        Self::from_poly(PrimitivePoly::for_degree(degree))
    }

    /// Generates the m-sequence of a specific primitive polynomial, seed 1.
    pub fn from_poly(poly: PrimitivePoly) -> Self {
        let mut lfsr = Lfsr::new(poly);
        let bits = lfsr.bits(poly.sequence_length());
        Self { poly, bits }
    }

    /// The generating polynomial.
    pub fn poly(&self) -> PrimitivePoly {
        self.poly
    }

    /// Sequence degree `n`.
    pub fn degree(&self) -> u32 {
        self.poly.degree()
    }

    /// Sequence length `N = 2ⁿ − 1`.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Always false — an m-sequence has length ≥ 3.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The bit at (cyclic) position `k`.
    pub fn bit(&self, k: usize) -> bool {
        self.bits[k % self.bits.len()]
    }

    /// Borrow of the underlying bits (one period).
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Number of ones in one period — always `(N+1)/2`.
    pub fn ones(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    /// Fraction of time the gate is open (`ones / N`), slightly above 0.5.
    pub fn duty_cycle(&self) -> f64 {
        self.ones() as f64 / self.len() as f64
    }

    /// One period as 0.0/1.0 samples (gate transmission).
    pub fn as_f64(&self) -> Vec<f64> {
        self.bits
            .iter()
            .map(|&b| if b { 1.0 } else { 0.0 })
            .collect()
    }

    /// One period in ±1 encoding: `(−1)^bit` (so a gate-open bit maps to −1).
    pub fn as_pm1(&self) -> Vec<f64> {
        self.bits
            .iter()
            .map(|&b| if b { -1.0 } else { 1.0 })
            .collect()
    }

    /// Cyclic autocorrelation of the 0/1 sequence at the given lag.
    pub fn autocorrelation01(&self, lag: usize) -> usize {
        let n = self.len();
        (0..n)
            .filter(|&k| self.bits[k] && self.bits[(k + lag) % n])
            .count()
    }

    /// The cyclic shift (by `shift`) as a new bit vector.
    pub fn shifted(&self, shift: usize) -> Vec<bool> {
        let n = self.len();
        (0..n).map(|k| self.bits[(k + shift) % n]).collect()
    }

    /// Finds the cyclic shift equal to `other`, if any.
    pub fn find_shift(&self, other: &[bool]) -> Option<usize> {
        let n = self.len();
        if other.len() != n {
            return None;
        }
        (0..n).find(|&s| (0..n).all(|k| self.bits[(k + s) % n] == other[k]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balance_property() {
        for degree in 2..=12 {
            let m = MSequence::new(degree);
            assert_eq!(
                m.ones(),
                m.len().div_ceil(2),
                "degree {degree}: wrong ones count"
            );
        }
    }

    #[test]
    fn two_level_autocorrelation() {
        for degree in [3u32, 5, 7, 9] {
            let m = MSequence::new(degree);
            let n = m.len();
            assert_eq!(m.autocorrelation01(0), n.div_ceil(2));
            for lag in 1..n {
                assert_eq!(
                    m.autocorrelation01(lag),
                    (n + 1) / 4,
                    "degree {degree} lag {lag}"
                );
            }
        }
    }

    #[test]
    fn shift_and_add_property() {
        // seq XOR shift(seq, s) is itself a cyclic shift of seq.
        let m = MSequence::new(6);
        let n = m.len();
        for s in 1..n.min(20) {
            let xored: Vec<bool> = (0..n).map(|k| m.bit(k) ^ m.bit(k + s)).collect();
            assert!(
                m.find_shift(&xored).is_some(),
                "shift-and-add failed at shift {s}"
            );
        }
    }

    #[test]
    fn run_length_distribution() {
        // Golomb's run property: in one period there are 2^{n-1} runs; half
        // of length 1, a quarter of length 2, etc.; one run of n ones and one
        // of n-1 zeros.
        let m = MSequence::new(8);
        let n = m.len();
        // Walk runs cyclically starting at a boundary.
        let start = (0..n)
            .find(|&k| m.bit(k) != m.bit(k + n - 1))
            .expect("sequence is not constant");
        let mut runs: Vec<(bool, usize)> = Vec::new();
        let mut k = 0;
        while k < n {
            let val = m.bit(start + k);
            let mut len = 1;
            while len < n && m.bit(start + k + len) == val {
                len += 1;
            }
            runs.push((val, len));
            k += len;
        }
        assert_eq!(runs.len(), 128); // 2^{n-1} runs
        let longest_ones = runs.iter().filter(|r| r.0).map(|r| r.1).max().unwrap();
        let longest_zeros = runs.iter().filter(|r| !r.0).map(|r| r.1).max().unwrap();
        assert_eq!(longest_ones, 8);
        assert_eq!(longest_zeros, 7);
        let len1 = runs.iter().filter(|r| r.1 == 1).count();
        assert_eq!(len1, 64); // half the runs have length 1
    }

    #[test]
    fn pm1_autocorrelation_is_minus_one_off_peak() {
        let m = MSequence::new(7);
        let pm = m.as_pm1();
        let n = m.len();
        for lag in 1..n {
            let c: f64 = (0..n).map(|k| pm[k] * pm[(k + lag) % n]).sum();
            assert!((c + 1.0).abs() < 1e-9, "lag {lag}: {c}");
        }
        let c0: f64 = pm.iter().map(|v| v * v).sum();
        assert!((c0 - n as f64).abs() < 1e-9);
    }

    #[test]
    fn duty_cycle_close_to_half() {
        let m = MSequence::new(9);
        let d = m.duty_cycle();
        assert!(d > 0.5 && d < 0.502, "duty cycle {d}");
    }

    #[test]
    fn find_shift_identity_and_mismatch() {
        let m = MSequence::new(5);
        assert_eq!(m.find_shift(m.bits()), Some(0));
        assert_eq!(m.find_shift(&m.shifted(11)), Some(11));
        let garbage = vec![true; m.len()];
        assert_eq!(m.find_shift(&garbage), None);
        assert_eq!(m.find_shift(&[true, false]), None);
    }
}
