//! Weighted (regularised) circulant inverses — the deconvolution that
//! tolerates non-ideal gate modulation.
//!
//! A real Bradbury–Nielsen gate does not produce the ideal 0/1 sequence: the
//! transmission has finite rise time, partial depletion, and amplitude
//! droop. The encoding is then `y = h ∗ x` with a *measured* kernel `h`
//! close to, but not equal to, the design sequence. Deconvolving with the
//! ideal simplex inverse leaves systematic "echo" artifacts at the
//! sequence's shift structure; deconvolving with a regularised inverse of
//! the measured kernel — the role the paper's "PNNL-developed enhancement"
//! plays — suppresses them.
//!
//! For a circulant system the Tikhonov-regularised least-squares solution
//! diagonalises in the Fourier basis:
//!
//! ```text
//! x̂ = argmin ‖h∗x − y‖² + λ‖x‖²  =  IDFT( conj(H)·Y / (|H|² + λ) )
//! ```
//!
//! [`CirculantInverse`] implements exactly that; the unit tests verify it
//! against the dense normal-equations solution from `ims-signal::matrix`.

use ims_signal::fft::{ifft, rfft, Complex, FftPlan, FftScratch};
use ims_signal::matrix::Matrix;

/// Fourier-domain (weighted) inverse of a circular-convolution system.
#[derive(Debug, Clone)]
pub struct CirculantInverse {
    kernel_dft: Vec<Complex>,
    lambda: f64,
}

impl CirculantInverse {
    /// Exact circulant inverse. Returns `None` if any DFT bin of the kernel
    /// is smaller than `tol` in magnitude (singular / ill-conditioned).
    pub fn exact(kernel: &[f64], tol: f64) -> Option<Self> {
        let kernel_dft = rfft(kernel);
        if kernel_dft.iter().any(|c| c.abs() < tol) {
            return None;
        }
        Some(Self {
            kernel_dft,
            lambda: 0.0,
        })
    }

    /// Tikhonov/Wiener-weighted inverse with regularisation `λ ≥ 0`.
    pub fn weighted(kernel: &[f64], lambda: f64) -> Self {
        assert!(lambda >= 0.0, "lambda must be non-negative");
        Self {
            kernel_dft: rfft(kernel),
            lambda,
        }
    }

    /// System length `L`.
    pub fn len(&self) -> usize {
        self.kernel_dft.len()
    }

    /// Always false in practice (kernels are non-empty).
    pub fn is_empty(&self) -> bool {
        self.kernel_dft.is_empty()
    }

    /// Condition number `max|H| / min|H|` of the unregularised system.
    pub fn condition_number(&self) -> f64 {
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        for c in &self.kernel_dft {
            let a = c.abs();
            lo = lo.min(a);
            hi = hi.max(a);
        }
        if lo == 0.0 {
            f64::INFINITY
        } else {
            hi / lo
        }
    }

    /// Solves `h ∗ x = y` in the weighted least-squares sense.
    ///
    /// # Panics
    /// Panics if `y.len()` differs from the kernel length.
    pub fn apply(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.len(), "dimension mismatch");
        let fy = rfft(y);
        let solved: Vec<Complex> = self
            .kernel_dft
            .iter()
            .zip(fy.iter())
            .map(|(&h, &v)| {
                let denom = h.norm_sqr() + self.lambda;
                (h.conj() * v).scale(1.0 / denom)
            })
            .collect();
        ifft(&solved).into_iter().map(|c| c.re).collect()
    }

    /// Builds the batched solver: hoists the per-bin `conj(H)` and
    /// `1/(|H|² + λ)` factors and an [`FftPlan`] out of the column loop.
    ///
    /// The factors are computed with exactly the arithmetic of
    /// [`CirculantInverse::apply`], and the planned panel FFT is
    /// bit-identical to the free `fft`/`ifft` calls `apply` makes, so
    /// [`CirculantSolver::solve_panel`] reproduces `apply` bit for bit on
    /// every column.
    pub fn solver(&self) -> CirculantSolver {
        let conj_h: Vec<Complex> = self.kernel_dft.iter().map(|h| h.conj()).collect();
        let inv_denom: Vec<f64> = self
            .kernel_dft
            .iter()
            .map(|h| {
                let denom = h.norm_sqr() + self.lambda;
                1.0 / denom
            })
            .collect();
        CirculantSolver {
            plan: FftPlan::new(self.len()),
            conj_h,
            inv_denom,
        }
    }
}

/// Batched, allocation-free form of [`CirculantInverse`]: an FFT plan plus
/// the precomputed spectral weights, applied to panels of columns.
#[derive(Debug, Clone)]
pub struct CirculantSolver {
    plan: FftPlan,
    /// `conj(H[k])` per DFT bin.
    conj_h: Vec<Complex>,
    /// `1 / (|H[k]|² + λ)` per DFT bin.
    inv_denom: Vec<f64>,
}

/// Reusable work arena for [`CirculantSolver`]. Grows to the largest panel
/// shape seen, then never allocates again.
#[derive(Debug, Clone, Default)]
pub struct CirculantScratch {
    panel: Vec<Complex>,
    fft: FftScratch,
}

impl CirculantSolver {
    /// System length `L`.
    pub fn len(&self) -> usize {
        self.conj_h.len()
    }

    /// Always false in practice (kernels are non-empty).
    pub fn is_empty(&self) -> bool {
        self.conj_h.is_empty()
    }

    /// Solves `h ∗ x = y` for a panel of `width` independent columns, in
    /// place. `panel` holds `L × width` real values in row-major order
    /// (`panel[r * width + c]` is sample `r` of column `c`). Per column the
    /// result is **bit-identical** to [`CirculantInverse::apply`].
    ///
    /// # Panics
    /// Panics if `width` is zero or `panel.len() != L * width`.
    pub fn solve_panel(&self, panel: &mut [f64], width: usize, scratch: &mut CirculantScratch) {
        self.solve_panel_with(ims_signal::simd::active(), panel, width, scratch);
    }

    /// [`CirculantSolver::solve_panel`] pinned to an explicit SIMD backend
    /// (testing hook; every backend is bit-identical).
    ///
    /// # Panics
    /// As [`CirculantSolver::solve_panel`].
    pub fn solve_panel_with(
        &self,
        be: ims_signal::simd::Backend,
        panel: &mut [f64],
        width: usize,
        scratch: &mut CirculantScratch,
    ) {
        assert!(width > 0, "panel width must be positive");
        let l = self.len();
        assert_eq!(
            panel.len(),
            l * width,
            "panel shape mismatch: {} values for {l} rows x {width} columns",
            panel.len()
        );
        scratch.panel.resize(panel.len(), Complex::ZERO);
        ims_signal::simd::widen_re(be, &mut scratch.panel, panel);
        self.plan
            .forward_panel_with(be, &mut scratch.panel, width, &mut scratch.fft);
        for (k, (&ch, &inv)) in self.conj_h.iter().zip(self.inv_denom.iter()).enumerate() {
            ims_signal::simd::cmul_scale_inplace(
                be,
                &mut scratch.panel[k * width..(k + 1) * width],
                ch,
                inv,
            );
        }
        self.plan
            .inverse_panel_with(be, &mut scratch.panel, width, &mut scratch.fft);
        ims_signal::simd::narrow_re(be, panel, &scratch.panel);
    }

    /// Allocation-free single-column solve: copies `y` into `out` and runs
    /// [`CirculantSolver::solve_panel`] with width 1.
    ///
    /// # Panics
    /// Panics if `y.len()` or `out.len()` differs from the kernel length.
    pub fn apply_into(&self, y: &[f64], out: &mut [f64], scratch: &mut CirculantScratch) {
        assert_eq!(y.len(), self.len(), "dimension mismatch");
        assert_eq!(out.len(), self.len(), "output dimension mismatch");
        out.copy_from_slice(y);
        self.solve_panel(out, 1, scratch);
    }
}

/// Dense cross-check: solves the same Tikhonov problem via the normal
/// equations on the materialised circulant matrix (`O(L³)`; tests and small
/// systems only).
pub fn dense_weighted_solve(kernel: &[f64], y: &[f64], lambda: f64) -> Option<Vec<f64>> {
    let l = kernel.len();
    assert_eq!(y.len(), l, "dimension mismatch");
    let a = Matrix::from_fn(l, l, |i, j| kernel[(i + l - j) % l]);
    a.least_squares(y, lambda)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msequence::MSequence;
    use crate::oversample::OversampledSequence;
    use ims_signal::correlate::circular_convolve_direct;

    fn planted_spectrum(l: usize) -> Vec<f64> {
        let mut x = vec![0.0; l];
        x[l / 7] = 40.0;
        x[l / 2] = 90.0;
        x[(6 * l) / 7] = 15.0;
        x
    }

    #[test]
    fn exact_inverse_round_trips_msequence() {
        let seq = MSequence::new(6);
        let h = seq.as_f64();
        let x = planted_spectrum(h.len());
        let y = circular_convolve_direct(&h, &x);
        let inv = CirculantInverse::exact(&h, 1e-9).expect("m-sequence is invertible");
        let back = inv.apply(&y);
        for (i, (a, b)) in x.iter().zip(back.iter()).enumerate() {
            assert!((a - b).abs() < 1e-7, "bin {i}: {a} vs {b}");
        }
    }

    #[test]
    fn exact_refuses_singular_kernel() {
        let seq = MSequence::new(5);
        let repeated = OversampledSequence::repeat(seq, 3);
        assert!(CirculantInverse::exact(&repeated.as_f64(), 1e-9).is_none());
    }

    #[test]
    fn weighted_matches_dense_normal_equations() {
        let seq = MSequence::new(4);
        let mut h = seq.as_f64();
        // Perturb into a "measured" non-ideal kernel.
        for (k, v) in h.iter_mut().enumerate() {
            *v *= 0.9 + 0.02 * (k as f64 * 0.7).sin();
        }
        let x = planted_spectrum(h.len());
        let y = circular_convolve_direct(&h, &x);
        let lambda = 0.3;
        let fast = CirculantInverse::weighted(&h, lambda).apply(&y);
        let dense = dense_weighted_solve(&h, &y, lambda).unwrap();
        for (i, (a, b)) in fast.iter().zip(dense.iter()).enumerate() {
            assert!((a - b).abs() < 1e-6, "bin {i}: {a} vs {b}");
        }
    }

    #[test]
    fn weighted_inverse_beats_ideal_inverse_on_defective_gate() {
        use crate::FastMTransform;
        let seq = MSequence::new(7);
        let n = seq.len();
        // Measured kernel: ideal sequence with rise-time droop on each
        // opening's first bin and 10 % amplitude sag.
        let ideal = seq.as_f64();
        let mut measured = ideal.clone();
        for k in 0..n {
            if measured[k] > 0.0 {
                let prev = measured[(k + n - 1) % n];
                measured[k] = if prev == 0.0 { 0.55 } else { 0.9 };
            }
        }
        let x = planted_spectrum(n);
        let y = circular_convolve_direct(&measured, &x);

        // Ideal simplex inverse (assumes the design sequence).
        let naive = FastMTransform::new(&seq).deconvolve_convolution(&y);
        // Weighted inverse with the measured kernel.
        let weighted = CirculantInverse::weighted(&measured, 1e-6).apply(&y);

        let err = |est: &[f64]| -> f64 {
            est.iter()
                .zip(x.iter())
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt()
        };
        let e_naive = err(&naive);
        let e_weighted = err(&weighted);
        assert!(
            e_weighted < e_naive / 10.0,
            "weighted {e_weighted} should beat naive {e_naive} by >10x"
        );
    }

    #[test]
    fn solver_panel_is_bit_identical_to_apply() {
        // Non-power-of-two (m-sequence) and power-of-two kernel lengths,
        // exact and weighted inverses, several panel widths.
        let seq = MSequence::new(5);
        let mut measured = seq.as_f64();
        for (k, v) in measured.iter_mut().enumerate() {
            *v *= 0.9 + 0.05 * (k as f64 * 0.3).cos();
        }
        let pow2_kernel: Vec<f64> = (0..16).map(|k| 1.0 + ((k * 7) % 5) as f64 * 0.25).collect();
        let inverses = [
            CirculantInverse::exact(&seq.as_f64(), 1e-9).unwrap(),
            CirculantInverse::weighted(&measured, 0.7),
            CirculantInverse::weighted(&pow2_kernel, 1e-3),
        ];
        for inv in &inverses {
            let l = inv.len();
            let solver = inv.solver();
            assert_eq!(solver.len(), l);
            let mut scratch = CirculantScratch::default();
            for width in [1usize, 3, 8] {
                let columns: Vec<Vec<f64>> = (0..width)
                    .map(|c| {
                        (0..l)
                            .map(|k| ((k * 29 + c * 13 + 3) % 83) as f64 * 0.21 - 8.0)
                            .collect()
                    })
                    .collect();
                let mut panel = vec![0.0; l * width];
                for (c, col) in columns.iter().enumerate() {
                    for (r, &v) in col.iter().enumerate() {
                        panel[r * width + c] = v;
                    }
                }
                solver.solve_panel(&mut panel, width, &mut scratch);
                for (c, col) in columns.iter().enumerate() {
                    let oracle = inv.apply(col);
                    for r in 0..l {
                        assert_eq!(
                            panel[r * width + c].to_bits(),
                            oracle[r].to_bits(),
                            "L={l} width={width} at ({r},{c})"
                        );
                    }
                }
                // apply_into must agree with the per-column oracle too.
                let mut out = vec![0.0; l];
                solver.apply_into(&columns[0], &mut out, &mut scratch);
                for (a, b) in out.iter().zip(inv.apply(&columns[0]).iter()) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }

    #[test]
    fn condition_number_of_msequence_kernel() {
        let seq = MSequence::new(8);
        let inv = CirculantInverse::weighted(&seq.as_f64(), 0.0);
        // |H(0)| = (N+1)/2, |H(f≠0)| = √(N+1)/2 → condition = √(N+1).
        let expect = ((seq.len() + 1) as f64).sqrt();
        assert!((inv.condition_number() - expect).abs() < 1e-6);
    }

    #[test]
    fn lambda_shrinks_the_solution() {
        let seq = MSequence::new(5);
        let h = seq.as_f64();
        let x = planted_spectrum(h.len());
        let y = circular_convolve_direct(&h, &x);
        let soft = CirculantInverse::weighted(&h, 50.0).apply(&y);
        let hard = CirculantInverse::weighted(&h, 0.0).apply(&y);
        let norm = |v: &[f64]| v.iter().map(|a| a * a).sum::<f64>().sqrt();
        assert!(norm(&soft) < norm(&hard));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_lambda_rejected() {
        let _ = CirculantInverse::weighted(&[1.0, 0.0], -1.0);
    }
}
