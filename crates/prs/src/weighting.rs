//! Weighted (regularised) circulant inverses — the deconvolution that
//! tolerates non-ideal gate modulation.
//!
//! A real Bradbury–Nielsen gate does not produce the ideal 0/1 sequence: the
//! transmission has finite rise time, partial depletion, and amplitude
//! droop. The encoding is then `y = h ∗ x` with a *measured* kernel `h`
//! close to, but not equal to, the design sequence. Deconvolving with the
//! ideal simplex inverse leaves systematic "echo" artifacts at the
//! sequence's shift structure; deconvolving with a regularised inverse of
//! the measured kernel — the role the paper's "PNNL-developed enhancement"
//! plays — suppresses them.
//!
//! For a circulant system the Tikhonov-regularised least-squares solution
//! diagonalises in the Fourier basis:
//!
//! ```text
//! x̂ = argmin ‖h∗x − y‖² + λ‖x‖²  =  IDFT( conj(H)·Y / (|H|² + λ) )
//! ```
//!
//! [`CirculantInverse`] implements exactly that; the unit tests verify it
//! against the dense normal-equations solution from `ims-signal::matrix`.

use ims_signal::fft::{ifft, rfft, Complex};
use ims_signal::matrix::Matrix;

/// Fourier-domain (weighted) inverse of a circular-convolution system.
#[derive(Debug, Clone)]
pub struct CirculantInverse {
    kernel_dft: Vec<Complex>,
    lambda: f64,
}

impl CirculantInverse {
    /// Exact circulant inverse. Returns `None` if any DFT bin of the kernel
    /// is smaller than `tol` in magnitude (singular / ill-conditioned).
    pub fn exact(kernel: &[f64], tol: f64) -> Option<Self> {
        let kernel_dft = rfft(kernel);
        if kernel_dft.iter().any(|c| c.abs() < tol) {
            return None;
        }
        Some(Self {
            kernel_dft,
            lambda: 0.0,
        })
    }

    /// Tikhonov/Wiener-weighted inverse with regularisation `λ ≥ 0`.
    pub fn weighted(kernel: &[f64], lambda: f64) -> Self {
        assert!(lambda >= 0.0, "lambda must be non-negative");
        Self {
            kernel_dft: rfft(kernel),
            lambda,
        }
    }

    /// System length `L`.
    pub fn len(&self) -> usize {
        self.kernel_dft.len()
    }

    /// Always false in practice (kernels are non-empty).
    pub fn is_empty(&self) -> bool {
        self.kernel_dft.is_empty()
    }

    /// Condition number `max|H| / min|H|` of the unregularised system.
    pub fn condition_number(&self) -> f64 {
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        for c in &self.kernel_dft {
            let a = c.abs();
            lo = lo.min(a);
            hi = hi.max(a);
        }
        if lo == 0.0 {
            f64::INFINITY
        } else {
            hi / lo
        }
    }

    /// Solves `h ∗ x = y` in the weighted least-squares sense.
    ///
    /// # Panics
    /// Panics if `y.len()` differs from the kernel length.
    pub fn apply(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.len(), "dimension mismatch");
        let fy = rfft(y);
        let solved: Vec<Complex> = self
            .kernel_dft
            .iter()
            .zip(fy.iter())
            .map(|(&h, &v)| {
                let denom = h.norm_sqr() + self.lambda;
                (h.conj() * v).scale(1.0 / denom)
            })
            .collect();
        ifft(&solved).into_iter().map(|c| c.re).collect()
    }
}

/// Dense cross-check: solves the same Tikhonov problem via the normal
/// equations on the materialised circulant matrix (`O(L³)`; tests and small
/// systems only).
pub fn dense_weighted_solve(kernel: &[f64], y: &[f64], lambda: f64) -> Option<Vec<f64>> {
    let l = kernel.len();
    assert_eq!(y.len(), l, "dimension mismatch");
    let a = Matrix::from_fn(l, l, |i, j| kernel[(i + l - j) % l]);
    a.least_squares(y, lambda)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msequence::MSequence;
    use crate::oversample::OversampledSequence;
    use ims_signal::correlate::circular_convolve_direct;

    fn planted_spectrum(l: usize) -> Vec<f64> {
        let mut x = vec![0.0; l];
        x[l / 7] = 40.0;
        x[l / 2] = 90.0;
        x[(6 * l) / 7] = 15.0;
        x
    }

    #[test]
    fn exact_inverse_round_trips_msequence() {
        let seq = MSequence::new(6);
        let h = seq.as_f64();
        let x = planted_spectrum(h.len());
        let y = circular_convolve_direct(&h, &x);
        let inv = CirculantInverse::exact(&h, 1e-9).expect("m-sequence is invertible");
        let back = inv.apply(&y);
        for (i, (a, b)) in x.iter().zip(back.iter()).enumerate() {
            assert!((a - b).abs() < 1e-7, "bin {i}: {a} vs {b}");
        }
    }

    #[test]
    fn exact_refuses_singular_kernel() {
        let seq = MSequence::new(5);
        let repeated = OversampledSequence::repeat(seq, 3);
        assert!(CirculantInverse::exact(&repeated.as_f64(), 1e-9).is_none());
    }

    #[test]
    fn weighted_matches_dense_normal_equations() {
        let seq = MSequence::new(4);
        let mut h = seq.as_f64();
        // Perturb into a "measured" non-ideal kernel.
        for (k, v) in h.iter_mut().enumerate() {
            *v *= 0.9 + 0.02 * (k as f64 * 0.7).sin();
        }
        let x = planted_spectrum(h.len());
        let y = circular_convolve_direct(&h, &x);
        let lambda = 0.3;
        let fast = CirculantInverse::weighted(&h, lambda).apply(&y);
        let dense = dense_weighted_solve(&h, &y, lambda).unwrap();
        for (i, (a, b)) in fast.iter().zip(dense.iter()).enumerate() {
            assert!((a - b).abs() < 1e-6, "bin {i}: {a} vs {b}");
        }
    }

    #[test]
    fn weighted_inverse_beats_ideal_inverse_on_defective_gate() {
        use crate::FastMTransform;
        let seq = MSequence::new(7);
        let n = seq.len();
        // Measured kernel: ideal sequence with rise-time droop on each
        // opening's first bin and 10 % amplitude sag.
        let ideal = seq.as_f64();
        let mut measured = ideal.clone();
        for k in 0..n {
            if measured[k] > 0.0 {
                let prev = measured[(k + n - 1) % n];
                measured[k] = if prev == 0.0 { 0.55 } else { 0.9 };
            }
        }
        let x = planted_spectrum(n);
        let y = circular_convolve_direct(&measured, &x);

        // Ideal simplex inverse (assumes the design sequence).
        let naive = FastMTransform::new(&seq).deconvolve_convolution(&y);
        // Weighted inverse with the measured kernel.
        let weighted = CirculantInverse::weighted(&measured, 1e-6).apply(&y);

        let err = |est: &[f64]| -> f64 {
            est.iter()
                .zip(x.iter())
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt()
        };
        let e_naive = err(&naive);
        let e_weighted = err(&weighted);
        assert!(
            e_weighted < e_naive / 10.0,
            "weighted {e_weighted} should beat naive {e_naive} by >10x"
        );
    }

    #[test]
    fn condition_number_of_msequence_kernel() {
        let seq = MSequence::new(8);
        let inv = CirculantInverse::weighted(&seq.as_f64(), 0.0);
        // |H(0)| = (N+1)/2, |H(f≠0)| = √(N+1)/2 → condition = √(N+1).
        let expect = ((seq.len() + 1) as f64).sqrt();
        assert!((inv.condition_number() - expect).abs() < 1e-6);
    }

    #[test]
    fn lambda_shrinks_the_solution() {
        let seq = MSequence::new(5);
        let h = seq.as_f64();
        let x = planted_spectrum(h.len());
        let y = circular_convolve_direct(&h, &x);
        let soft = CirculantInverse::weighted(&h, 50.0).apply(&y);
        let hard = CirculantInverse::weighted(&h, 0.0).apply(&y);
        let norm = |v: &[f64]| v.iter().map(|a| a * a).sum::<f64>().sqrt();
        assert!(norm(&soft) < norm(&hard));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_lambda_rejected() {
        let _ = CirculantInverse::weighted(&[1.0, 0.0], -1.0);
    }
}
