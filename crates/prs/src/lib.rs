//! Pseudo-random sequences and Hadamard algebra for multiplexed ion mobility
//! spectrometry.
//!
//! Hadamard-transform ion mobility spectrometry (HT-IMS) replaces the single
//! narrow gate pulse of a signal-averaged IMS experiment with a pseudo-random
//! binary gating sequence. The detector then observes the *circular
//! convolution* of the true arrival-time distribution with the gating
//! sequence. Because maximal-length sequences (m-sequences) have a two-level
//! autocorrelation, this convolution is invertible in closed form, and the
//! gate can stay open for ~50 % of the experiment instead of `1/N` of it —
//! the multiplexing advantage at the heart of the simulated instrument.
//!
//! This crate provides, from first principles:
//!
//! * primitive polynomials over GF(2) and their verification ([`poly`]);
//! * Fibonacci/Galois linear-feedback shift registers ([`lfsr`]);
//! * maximal-length sequences with their defining properties ([`msequence`]);
//! * cyclic simplex (S-) matrices and their closed-form inverse ([`simplex`]);
//! * Sylvester–Hadamard matrices ([`hadamard`]);
//! * the LFSR-state permutation that maps m-sequence correlation onto the
//!   fast Walsh–Hadamard transform ([`permutation`]) — the same
//!   "memory-addressing logic" the paper's FPGA deconvolution core uses;
//! * oversampled and modified sequences used by the PNNL-enhanced
//!   deconvolution ([`oversample`]);
//! * weighted (regularised) inverses tolerant of non-ideal gate modulation
//!   ([`weighting`]);
//! * sequence quality metrics ([`metrics`]).
//!
//! # Example: encode and decode a drift spectrum
//!
//! ```
//! use ims_prs::{FastMTransform, MSequence, SimplexMatrix};
//!
//! // Order-7 m-sequence: N = 127 drift bins, gate open ~50 % of the time.
//! let seq = MSequence::new(7);
//! assert_eq!(seq.len(), 127);
//! assert_eq!(seq.ones(), 64);
//!
//! // A drift spectrum with two analyte peaks…
//! let mut x = vec![0.0; 127];
//! x[30] = 100.0;
//! x[90] = 40.0;
//!
//! // …multiplex-encoded by the instrument (y = S·x)…
//! let y = SimplexMatrix::new(seq.clone()).apply(&x);
//!
//! // …and recovered exactly by the fast Hadamard inverse.
//! let recovered = FastMTransform::new(&seq).deconvolve(&y);
//! assert!((recovered[30] - 100.0).abs() < 1e-8);
//! assert!((recovered[90] - 40.0).abs() < 1e-8);
//! ```

#![warn(missing_docs)]

pub mod hadamard;
pub mod lfsr;
pub mod metrics;
pub mod msequence;
pub mod oversample;
pub mod permutation;
pub mod poly;
pub mod simplex;
pub mod weighting;

pub use lfsr::{GaloisLfsr, Lfsr};
pub use msequence::MSequence;
pub use oversample::OversampledSequence;
pub use permutation::FastMTransform;
pub use poly::PrimitivePoly;
pub use simplex::SimplexMatrix;
