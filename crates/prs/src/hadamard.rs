//! Sylvester–Hadamard matrices.
//!
//! `H_M` (`M = 2ⁿ`) with entries `H[i][j] = (−1)^{popcount(i & j)}` is the
//! transform the fast Walsh–Hadamard butterfly computes. The cyclic simplex
//! matrix of an m-sequence is — up to row/column permutations and the 0/1 ↔
//! ±1 affine map — the core of `H_{N+1}`, which is why m-sequence
//! deconvolution can ride the FWHT (see [`crate::permutation`]).

use ims_signal::matrix::Matrix;

/// Dense Sylvester–Hadamard matrix of order `2ⁿ`.
pub fn sylvester(n: u32) -> Matrix {
    let m = 1usize << n;
    Matrix::from_fn(m, m, |i, j| {
        if (i & j).count_ones() % 2 == 0 {
            1.0
        } else {
            -1.0
        }
    })
}

/// Checks the defining property `H·Hᵀ = M·I` for a candidate matrix.
pub fn is_hadamard(h: &Matrix) -> bool {
    let m = h.rows();
    if h.cols() != m || m == 0 {
        return false;
    }
    if h.data().iter().any(|&v| v != 1.0 && v != -1.0) {
        return false;
    }
    let prod = h.matmul(&h.transpose());
    let mut scaled_eye = Matrix::identity(m);
    for i in 0..m {
        scaled_eye[(i, i)] = m as f64;
    }
    prod.max_abs_diff(&scaled_eye) < 1e-9
}

/// Extracts the S-matrix hidden in a normalised Hadamard matrix: delete the
/// first row and column, then map `+1 → 0`, `−1 → 1`.
///
/// The result is an S-matrix in the Hadamard-spectroscopy sense (every such
/// matrix satisfies the closed-form inverse used by [`crate::simplex`]); it
/// is row/column-permutation equivalent to the cyclic m-sequence S-matrix of
/// the same order.
pub fn s_matrix_from_hadamard(h: &Matrix) -> Matrix {
    let m = h.rows();
    assert!(m >= 2, "Hadamard order must be at least 2");
    Matrix::from_fn(m - 1, m - 1, |i, j| {
        if h[(i + 1, j + 1)] < 0.0 {
            1.0
        } else {
            0.0
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sylvester_matrices_are_hadamard() {
        for n in 0..=6 {
            let h = sylvester(n);
            assert!(is_hadamard(&h), "order 2^{n}");
        }
    }

    #[test]
    fn order_two_explicit() {
        let h = sylvester(1);
        assert_eq!(h[(0, 0)], 1.0);
        assert_eq!(h[(0, 1)], 1.0);
        assert_eq!(h[(1, 0)], 1.0);
        assert_eq!(h[(1, 1)], -1.0);
    }

    #[test]
    fn first_row_and_column_are_ones() {
        let h = sylvester(4);
        for k in 0..16 {
            assert_eq!(h[(0, k)], 1.0);
            assert_eq!(h[(k, 0)], 1.0);
        }
    }

    #[test]
    fn is_hadamard_rejects_non_hadamard() {
        let mut h = sylvester(2);
        h[(1, 1)] = 1.0; // break orthogonality
        assert!(!is_hadamard(&h));
        let bad_entries = Matrix::from_fn(2, 2, |_, _| 0.5);
        assert!(!is_hadamard(&bad_entries));
        let not_square = Matrix::zeros(2, 3);
        assert!(!is_hadamard(&not_square));
    }

    #[test]
    fn extracted_s_matrix_satisfies_closed_form_inverse() {
        // S⁻¹ = 2/(N+1)·(2S − J)ᵀ must hold for the Hadamard-derived S too.
        for n in 2..=5u32 {
            let h = sylvester(n);
            let s = s_matrix_from_hadamard(&h);
            let order = s.rows();
            let scale = 2.0 / (order as f64 + 1.0);
            let inv = Matrix::from_fn(order, order, |i, j| scale * (2.0 * s[(j, i)] - 1.0));
            let eye = s.matmul(&inv);
            assert!(
                eye.max_abs_diff(&Matrix::identity(order)) < 1e-9,
                "order {order}"
            );
        }
    }

    #[test]
    fn s_matrix_rows_balanced() {
        let h = sylvester(4);
        let s = s_matrix_from_hadamard(&h);
        for i in 0..s.rows() {
            let weight: f64 = s.row(i).iter().sum();
            assert_eq!(weight, 8.0, "row {i}"); // (N+1)/2 with N = 15
        }
    }
}
