//! Oversampled and modified pseudo-random sequences.
//!
//! The PNNL enhancement to classic HT-IMS (Belov/Clowers et al., Anal. Chem.
//! 2007/2008) gates the ion beam on a time base `m×` finer than the sequence
//! element: each element of the base m-sequence is stretched over `m` fine
//! bins, and the deconvolution recovers drift spectra at the fine-bin
//! resolution. The catch: the plainly repeated sequence has exactly `m − 1`
//! zeros in its DFT (the Dirichlet kernel of the `m`-bin boxcar nulls the
//! frequencies `N, 2N, …, (m−1)·N`), so the fine-grained encoding matrix is
//! singular — this is why the original multiplexing work needed
//! sample-dependent *weighting designs*, and why the 2008 "pseudo-random
//! sequence modifications" paper instead perturbs the sequence until the
//! circulant becomes invertible.
//!
//! [`OversampledSequence::modified`] reproduces that idea deterministically:
//! it greedily adds gate-open pulses (never removing any, so ion throughput
//! only rises) until the minimum DFT magnitude clears a threshold.

use crate::msequence::MSequence;
use ims_signal::fft::rfft;
use serde::{Deserialize, Serialize};

/// Default minimum-|DFT| threshold for [`OversampledSequence::modified`].
///
/// A single added pulse moves every previously-zero bin to magnitude ~1;
/// demanding slightly less than 1 keeps the search to a handful of pulses.
pub const DEFAULT_MIN_DFT: f64 = 0.9;

/// An oversampled (optionally modified) gate sequence on the fine time base.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OversampledSequence {
    base: MSequence,
    factor: usize,
    bits: Vec<bool>,
    /// Fine-bin positions flipped 0 → 1 relative to the plain repetition.
    added_pulses: Vec<usize>,
}

impl OversampledSequence {
    /// Plain repetition: element `k` of the base sequence is held for
    /// `factor` fine bins. For `factor > 1` the resulting circulant is
    /// singular (see module docs).
    pub fn repeat(base: MSequence, factor: usize) -> Self {
        assert!(factor >= 1, "oversampling factor must be >= 1");
        let bits: Vec<bool> = base
            .bits()
            .iter()
            .flat_map(|&b| std::iter::repeat_n(b, factor))
            .collect();
        Self {
            base,
            factor,
            bits,
            added_pulses: Vec::new(),
        }
    }

    /// Modified oversampled sequence: plain repetition plus the minimum
    /// number of greedily chosen extra gate-open pulses needed to push the
    /// minimum DFT magnitude above `min_dft`.
    ///
    /// The search is deterministic: candidates are the gate-closed fine bins
    /// immediately *preceding* a gate opening (extending each opening's
    /// leading edge, which is also what a real Bradbury–Nielsen gate driver
    /// can do most cheaply), falling back to all gate-closed bins if the
    /// edge candidates run out.
    pub fn modified(base: MSequence, factor: usize, min_dft: f64) -> Self {
        let mut seq = Self::repeat(base, factor);
        if factor == 1 {
            return seq; // already invertible: m-sequence spectrum is flat
        }
        let len = seq.bits.len();
        let edge_candidates: Vec<usize> = (0..len)
            .filter(|&p| !seq.bits[p] && seq.bits[(p + 1) % len])
            .collect();
        let mut all_candidates: Vec<usize> = (0..len).filter(|&p| !seq.bits[p]).collect();
        // Try leading-edge positions first.
        all_candidates.sort_by_key(|p| if edge_candidates.contains(p) { 0 } else { 1 });

        // Greedy: repeatedly add the pulse that maximises the new min |DFT|.
        let max_pulses = 2 * factor; // far more than ever needed
        while seq.min_dft_magnitude() < min_dft && seq.added_pulses.len() < max_pulses {
            let mut best: Option<(usize, f64)> = None;
            for &p in all_candidates.iter().take(64) {
                if seq.bits[p] {
                    continue;
                }
                seq.bits[p] = true;
                let quality = seq.min_dft_magnitude();
                seq.bits[p] = false;
                if best.is_none_or(|(_, q)| quality > q) {
                    best = Some((p, quality));
                }
            }
            match best {
                Some((p, _)) => {
                    seq.bits[p] = true;
                    seq.added_pulses.push(p);
                    all_candidates.retain(|&c| c != p);
                }
                None => break,
            }
        }
        seq
    }

    /// Convenience: [`Self::modified`] with [`DEFAULT_MIN_DFT`].
    pub fn modified_default(base: MSequence, factor: usize) -> Self {
        Self::modified(base, factor, DEFAULT_MIN_DFT)
    }

    /// The base m-sequence.
    pub fn base(&self) -> &MSequence {
        &self.base
    }

    /// Oversampling factor `m`.
    pub fn factor(&self) -> usize {
        self.factor
    }

    /// Fine-bin sequence length `m·N`.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Always false.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Fine-bin gate pattern.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Positions of the pulses added by the modification step.
    pub fn added_pulses(&self) -> &[usize] {
        &self.added_pulses
    }

    /// Gate transmission as 0.0/1.0 samples on the fine time base.
    pub fn as_f64(&self) -> Vec<f64> {
        self.bits
            .iter()
            .map(|&b| if b { 1.0 } else { 0.0 })
            .collect()
    }

    /// Fraction of fine bins with the gate open.
    pub fn duty_cycle(&self) -> f64 {
        self.bits.iter().filter(|&&b| b).count() as f64 / self.len() as f64
    }

    /// Number of gate-open → gate-closed transitions per period (the pulse
    /// count the 2008 paper doubles relative to classic HT-IMS).
    pub fn pulse_count(&self) -> usize {
        let n = self.len();
        (0..n)
            .filter(|&k| self.bits[k] && !self.bits[(k + 1) % n])
            .count()
    }

    /// Minimum DFT magnitude of the 0/1 fine-bin sequence — the
    /// conditioning of the circulant encoding matrix (0 ⇒ singular).
    pub fn min_dft_magnitude(&self) -> f64 {
        let spec = rfft(&self.as_f64());
        spec.iter().map(|c| c.abs()).fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_one_is_the_base_sequence() {
        let base = MSequence::new(5);
        let o = OversampledSequence::repeat(base.clone(), 1);
        assert_eq!(o.len(), base.len());
        assert_eq!(o.bits(), base.bits());
        assert!(o.min_dft_magnitude() > 0.5);
    }

    #[test]
    fn plain_repetition_is_singular() {
        let base = MSequence::new(5);
        for m in [2usize, 3, 4] {
            let o = OversampledSequence::repeat(base.clone(), m);
            assert_eq!(o.len(), m * base.len());
            assert!(
                o.min_dft_magnitude() < 1e-9,
                "factor {m}: min |DFT| = {}",
                o.min_dft_magnitude()
            );
        }
    }

    #[test]
    fn repetition_has_exactly_m_minus_1_null_bins() {
        let base = MSequence::new(5);
        let m = 3;
        let o = OversampledSequence::repeat(base.clone(), m);
        let spec = rfft(&o.as_f64());
        let nulls = spec.iter().filter(|c| c.abs() < 1e-9).count();
        assert_eq!(nulls, m - 1);
    }

    #[test]
    fn modified_sequence_is_invertible() {
        let base = MSequence::new(6);
        for m in [2usize, 3] {
            let o = OversampledSequence::modified(base.clone(), m, DEFAULT_MIN_DFT);
            assert!(
                o.min_dft_magnitude() >= DEFAULT_MIN_DFT,
                "factor {m}: min |DFT| = {}",
                o.min_dft_magnitude()
            );
            assert!(!o.added_pulses().is_empty());
            assert!(o.added_pulses().len() <= 4, "needed {:?}", o.added_pulses());
        }
    }

    #[test]
    fn modification_only_adds_pulses() {
        let base = MSequence::new(6);
        let plain = OversampledSequence::repeat(base.clone(), 3);
        let modified = OversampledSequence::modified(base, 3, DEFAULT_MIN_DFT);
        for (k, (&a, &b)) in plain.bits().iter().zip(modified.bits().iter()).enumerate() {
            assert!(!a || b, "pulse removed at fine bin {k}");
        }
        assert!(modified.duty_cycle() >= plain.duty_cycle());
    }

    #[test]
    fn duty_cycle_stays_near_half() {
        let base = MSequence::new(7);
        let o = OversampledSequence::modified(base, 2, DEFAULT_MIN_DFT);
        let d = o.duty_cycle();
        assert!(d > 0.49 && d < 0.53, "duty cycle {d}");
    }

    #[test]
    fn pulse_count_counts_falling_edges() {
        let base = MSequence::new(4);
        let o = OversampledSequence::repeat(base.clone(), 1);
        // For an m-sequence the number of 1-runs is 2^{n-2}.
        assert_eq!(o.pulse_count(), 4);
    }

    #[test]
    #[should_panic(expected = "factor must be >= 1")]
    fn zero_factor_rejected() {
        let _ = OversampledSequence::repeat(MSequence::new(4), 0);
    }
}
