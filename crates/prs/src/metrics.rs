//! Quality metrics for gate sequences.
//!
//! These scores drive the sequence-selection ablations: a good multiplexing
//! sequence has duty cycle near ½ (throughput), flat off-peak
//! autocorrelation (no deconvolution echoes), a well-conditioned circulant
//! spectrum (bounded noise amplification), and enough gate pulses per period
//! (fine drift-time sampling).

use ims_signal::fft::rfft;
use serde::{Deserialize, Serialize};

/// Summary metrics of a binary gate sequence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SequenceMetrics {
    /// Sequence length (fine bins).
    pub len: usize,
    /// Fraction of bins with the gate open.
    pub duty_cycle: f64,
    /// Number of gate pulses (rising edges) per period.
    pub pulse_count: usize,
    /// Peak-to-max-sidelobe ratio of the cyclic autocorrelation (dB).
    pub autocorrelation_contrast_db: f64,
    /// `max|DFT| / min|DFT|` of the 0/1 sequence (∞ ⇒ singular circulant).
    pub condition_number: f64,
    /// White-noise variance gain of the exact circulant inverse,
    /// `(1/L)·Σ_f 1/|H(f)|²`. For an ideal m-sequence this is ≈ `4/N` — the
    /// deconvolution *reduces* noise, which is the multiplex advantage.
    pub noise_gain: f64,
}

/// Computes all metrics for a 0/1 sequence given as booleans.
pub fn analyze(bits: &[bool]) -> SequenceMetrics {
    let n = bits.len();
    assert!(n >= 2, "sequence too short");
    let ones = bits.iter().filter(|&&b| b).count();
    let duty_cycle = ones as f64 / n as f64;
    let pulse_count = (0..n)
        .filter(|&k| bits[k] && !bits[(k + n - 1) % n])
        .count();

    // Cyclic autocorrelation of the mean-removed sequence.
    let x: Vec<f64> = bits
        .iter()
        .map(|&b| if b { 1.0 } else { 0.0 } - duty_cycle)
        .collect();
    let peak: f64 = x.iter().map(|v| v * v).sum();
    let mut max_sidelobe = 0.0f64;
    for lag in 1..n {
        let c: f64 = (0..n).map(|k| x[k] * x[(k + lag) % n]).sum();
        max_sidelobe = max_sidelobe.max(c.abs());
    }
    let autocorrelation_contrast_db = if max_sidelobe > 0.0 {
        10.0 * (peak / max_sidelobe).log10()
    } else {
        f64::INFINITY
    };

    // Spectral conditioning.
    let seq_f64: Vec<f64> = bits.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();
    let spec = rfft(&seq_f64);
    let magnitudes: Vec<f64> = spec.iter().map(|c| c.abs()).collect();
    let hi = magnitudes.iter().fold(0.0f64, |a, &b| a.max(b));
    let lo = magnitudes.iter().fold(f64::INFINITY, |a, &b| a.min(b));
    // Bins below the relative tolerance are numerically-zero (Bluestein
    // returns ~1e-13 rather than exact zeros for the singular cases).
    let tol = 1e-9 * hi.max(1.0);
    let singular = lo < tol;
    let condition_number = if singular { f64::INFINITY } else { hi / lo };
    // Noise gain of the exact inverse: output noise variance per unit input
    // noise variance = (1/L)·Σ_f 1/|H(f)|² (∞ if singular).
    let noise_gain = if singular {
        f64::INFINITY
    } else {
        magnitudes.iter().map(|a| 1.0 / (a * a)).sum::<f64>() / n as f64
    };

    SequenceMetrics {
        len: n,
        duty_cycle,
        pulse_count,
        autocorrelation_contrast_db,
        condition_number,
        noise_gain,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msequence::MSequence;
    use crate::oversample::OversampledSequence;

    #[test]
    fn msequence_metrics_match_theory() {
        let seq = MSequence::new(8);
        let m = analyze(seq.bits());
        let n = seq.len() as f64;
        assert_eq!(m.len, 255);
        assert!((m.duty_cycle - 0.502).abs() < 0.002);
        // Mean-removed autocorrelation of an m-sequence: peak/sidelobe = N.
        assert!(
            (m.autocorrelation_contrast_db - 10.0 * n.log10()).abs() < 0.1,
            "contrast {} dB",
            m.autocorrelation_contrast_db
        );
        // Condition number √(N+1) = 16.
        assert!((m.condition_number - 16.0).abs() < 1e-6);
        // Noise gain ≈ 4/N for the simplex inverse (noise is *reduced*).
        assert!(
            (m.noise_gain - 4.0 / n).abs() < 0.2 / n,
            "noise gain {}",
            m.noise_gain
        );
    }

    #[test]
    fn singular_sequence_flagged_infinite() {
        let base = MSequence::new(5);
        let rep = OversampledSequence::repeat(base, 2);
        let m = analyze(rep.bits());
        assert!(m.condition_number.is_infinite());
        assert!(m.noise_gain.is_infinite());
    }

    #[test]
    fn modified_sequence_is_finite_but_worse_conditioned() {
        let base = MSequence::new(5);
        let ideal = analyze(MSequence::new(5).bits());
        let modified = OversampledSequence::modified_default(base, 2);
        let m = analyze(modified.bits());
        assert!(m.condition_number.is_finite());
        assert!(m.condition_number > ideal.condition_number);
        assert!(m.noise_gain.is_finite());
    }

    #[test]
    fn single_pulse_sequence() {
        // Signal-averaging gate: one pulse per period → duty cycle 1/N.
        let mut bits = vec![false; 64];
        bits[0] = true;
        let m = analyze(&bits);
        assert_eq!(m.pulse_count, 1);
        assert!((m.duty_cycle - 1.0 / 64.0).abs() < 1e-12);
        // A delta has a perfectly flat spectrum.
        assert!((m.condition_number - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn rejects_trivial_sequences() {
        let _ = analyze(&[true]);
    }
}
