//! Property-based tests of the sequence algebra: the invariants that make
//! Hadamard-transform IMS invertible.

use ims_prs::weighting::CirculantInverse;
use ims_prs::{FastMTransform, Lfsr, MSequence, OversampledSequence, PrimitivePoly, SimplexMatrix};
use ims_signal::correlate::circular_convolve_direct;
use proptest::prelude::*;

fn signal(n: usize, seed: u64) -> Vec<f64> {
    (0..n)
        .map(|k| (((k as u64).wrapping_mul(seed.wrapping_add(7)) % 1009) as f64) / 7.0 - 60.0)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn simplex_encode_decode_is_identity(degree in 2u32..9, seed in 0u64..1000) {
        let seq = MSequence::new(degree);
        let s = SimplexMatrix::new(seq.clone());
        let x = signal(seq.len(), seed);
        let back = s.inverse_apply(&s.apply(&x));
        for (a, b) in x.iter().zip(back.iter()) {
            prop_assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn fast_transform_equals_simplex_inverse(degree in 2u32..10, seed in 0u64..1000) {
        let seq = MSequence::new(degree);
        let y = signal(seq.len(), seed);
        let slow = SimplexMatrix::new(seq.clone()).inverse_apply(&y);
        let fast = FastMTransform::new(&seq).deconvolve(&y);
        for (a, b) in slow.iter().zip(fast.iter()) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn convolution_deconvolution_round_trip(degree in 3u32..9, seed in 0u64..1000) {
        let seq = MSequence::new(degree);
        let x = signal(seq.len(), seed);
        let y = circular_convolve_direct(&seq.as_f64(), &x);
        let back = FastMTransform::new(&seq).deconvolve_convolution(&y);
        for (a, b) in x.iter().zip(back.iter()) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn every_seed_gives_a_rotation(degree in 3u32..9, seed in 1u32..512) {
        let poly = PrimitivePoly::for_degree(degree);
        let mask = (1u32 << degree) - 1;
        let s = (seed & mask).max(1);
        let base = MSequence::new(degree);
        let mut lfsr = Lfsr::with_seed(poly, s);
        let bits = lfsr.bits(base.len());
        prop_assert!(base.find_shift(&bits).is_some(), "seed {s} is not a rotation");
    }

    #[test]
    fn balance_and_duty_cycle(degree in 2u32..12) {
        let seq = MSequence::new(degree);
        prop_assert_eq!(seq.ones(), seq.len().div_ceil(2));
        let d = seq.duty_cycle();
        prop_assert!(d > 0.5 && d < 0.67, "duty {d}");
    }

    #[test]
    fn weighted_inverse_solves_perturbed_kernels(
        degree in 3u32..8,
        seed in 0u64..500,
        perturb in 0.0..0.25f64,
    ) {
        let seq = MSequence::new(degree);
        let n = seq.len();
        let mut h = seq.as_f64();
        for (k, v) in h.iter_mut().enumerate() {
            if *v > 0.0 {
                *v *= 1.0 - perturb * (((k * 13) % 10) as f64 / 10.0);
            }
        }
        let x = signal(n, seed);
        let y = circular_convolve_direct(&h, &x);
        let inv = CirculantInverse::exact(&h, 1e-9)
            .expect("perturbed m-sequence kernels stay invertible");
        let back = inv.apply(&y);
        for (a, b) in x.iter().zip(back.iter()) {
            prop_assert!((a - b).abs() < 1e-5 * (1.0 + a.abs()));
        }
    }

    #[test]
    fn modified_oversampling_is_always_invertible(degree in 3u32..7, factor in 2usize..4) {
        let base = MSequence::new(degree);
        let o = OversampledSequence::modified_default(base.clone(), factor);
        prop_assert!(o.min_dft_magnitude() >= 0.5, "min |DFT| {}", o.min_dft_magnitude());
        // Modification never removes throughput.
        let plain = OversampledSequence::repeat(base, factor);
        prop_assert!(o.duty_cycle() >= plain.duty_cycle());
    }

    #[test]
    fn autocorrelation_two_level(degree in 2u32..9, lag in 1usize..511) {
        let seq = MSequence::new(degree);
        let n = seq.len();
        let lag = 1 + lag % (n.saturating_sub(1).max(1));
        prop_assert_eq!(seq.autocorrelation01(lag), (n + 1) / 4);
    }
}

// --- Per-backend SIMD bit-exactness of the panel solvers -----------------
//
// The circulant spectral solve and the fast M-transform are the two panel
// kernels the deconvolution hot path runs; every available SIMD backend
// must reproduce the scalar reference bit for bit, at every panel width.

use ims_prs::permutation::TransformScratch;
use ims_prs::weighting::CirculantScratch;
use ims_signal::simd::{self, Backend};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn circulant_panels_bit_identical_across_backends(
        n in 2usize..48,
        width in 1usize..12,
        seed in 0u64..1000,
        lambda in 1e-9..1e-3f64,
    ) {
        let kernel = signal(n, seed.wrapping_add(13));
        let solver = CirculantInverse::weighted(&kernel, lambda).solver();
        let panel0: Vec<f64> = signal(n * width, seed);
        let mut scratch = CirculantScratch::default();
        let mut reference = panel0.clone();
        solver.solve_panel_with(Backend::Scalar, &mut reference, width, &mut scratch);
        for be in simd::available_backends() {
            let mut panel = panel0.clone();
            solver.solve_panel_with(be, &mut panel, width, &mut scratch);
            prop_assert!(
                panel.iter().zip(&reference).all(|(a, r)| a.to_bits() == r.to_bits()),
                "circulant panel diverges on {be:?} (n={n}, width={width})"
            );
        }
    }

    #[test]
    fn fast_m_transform_panels_bit_identical_across_backends(
        degree in 2u32..9,
        width in 1usize..12,
        seed in 0u64..1000,
    ) {
        let seq = MSequence::new(degree);
        let t = FastMTransform::new(&seq);
        let panel0: Vec<f64> = signal(seq.len() * width, seed);
        let mut scratch = TransformScratch::default();
        let mut reference = panel0.clone();
        t.deconvolve_convolution_panel_with(Backend::Scalar, &mut reference, width, &mut scratch);
        for be in simd::available_backends() {
            let mut panel = panel0.clone();
            t.deconvolve_convolution_panel_with(be, &mut panel, width, &mut scratch);
            prop_assert!(
                panel.iter().zip(&reference).all(|(a, r)| a.to_bits() == r.to_bits()),
                "fast M-transform panel diverges on {be:?} (degree={degree}, width={width})"
            );
        }
    }
}
