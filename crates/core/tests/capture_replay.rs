//! Integration tests of the frame capture log and the sharded accumulator's
//! recovery paths: every sourced frame lands in the log, replaying a log
//! reproduces the original output FNV bit-for-bit on every executor, a
//! killed shard is rebuilt from the log transparently (Completed, clean
//! fingerprint), and without a log the loss is surfaced as a Degraded run
//! with the shard's m/z range zeroed and blamed in the report.

use htims_core::acquisition::{acquire, AcquireOptions, GateSchedule};
use htims_core::capture::CaptureLog;
use htims_core::fault::{FaultInjector, FaultSpec};
use htims_core::hybrid::{hybrid_pipeline, FrameGenerator, HybridConfig};
use htims_core::pipeline::{output_fingerprint, DeconvBackend, Pipeline, RunOutcome};
use ims_fpga::MzBinner;
use ims_prs::MSequence;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("htims_replay_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn generator(degree: u32, mz_bins: usize) -> (FrameGenerator, MSequence) {
    let bins = (1usize << degree) - 1;
    let mut inst = ims_physics::Instrument::with_drift_bins(bins);
    inst.tof.n_bins = mz_bins;
    let w = ims_physics::Workload::single_calibrant();
    let schedule = GateSchedule::multiplexed(degree);
    let mut rng = ChaCha8Rng::seed_from_u64(17);
    let data = acquire(&inst, &w, &schedule, 1, AcquireOptions::default(), &mut rng);
    let seq = match schedule {
        GateSchedule::Multiplexed { seq } => seq,
        _ => unreachable!(),
    };
    (FrameGenerator::new(&data, &inst.adc, 42), seq)
}

fn graph(gen: &FrameGenerator, seq: &MSequence, cfg: &HybridConfig, blocks: u64) -> Pipeline {
    let backend = DeconvBackend::fpga(seq, cfg.deconv);
    hybrid_pipeline(
        gen,
        seq,
        cfg,
        cfg.frames * blocks,
        cfg.frames,
        false,
        backend,
    )
}

fn block_data(out: &htims_core::pipeline::PipelineOutput) -> Vec<(u64, u64, Vec<i64>)> {
    out.blocks
        .iter()
        .map(|b| (b.index, b.frames, b.data.clone()))
        .collect()
}

#[test]
fn capture_log_records_every_sourced_frame_in_order() {
    let dir = temp_dir("records");
    let (gen, seq) = generator(4, 12);
    let cfg = HybridConfig {
        frames: 4,
        ..Default::default()
    };
    let log = CaptureLog::create(&dir).unwrap();
    let out = graph(&gen, &seq, &cfg, 3)
        .with_capture_log(log.clone())
        .run_inline();
    assert_eq!(out.report.outcome, RunOutcome::Completed);
    log.finish().unwrap();

    let packets = CaptureLog::open(&dir).unwrap().read_all().unwrap();
    assert_eq!(packets.len(), 12, "every sourced frame must be logged");
    let seqs: Vec<u64> = packets.iter().map(|p| p.seq_no).collect();
    assert_eq!(seqs, (0..12).collect::<Vec<_>>());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn replay_reproduces_output_bit_for_bit_across_executors() {
    let dir = temp_dir("fnv");
    let (gen, seq) = generator(5, 18);
    let cfg = HybridConfig {
        frames: 4,
        shards: 3,
        ..Default::default()
    };
    // A captured run with the full fault menu armed: source drops never
    // reach the log, downstream faults are keyed by seq_no / block index
    // and so re-fire identically on replay.
    let spec = FaultSpec::parse("frame.drop=0.25,dma.bitflip=1e-5,deconv.fail=0.3,shard.kill=0.6")
        .unwrap();
    let log = CaptureLog::create(&dir).unwrap();
    let captured = graph(&gen, &seq, &cfg, 4)
        .with_faults(FaultInjector::new(99, spec.clone()))
        .with_capture_log(log.clone())
        .run_inline();
    log.finish().unwrap();
    let captured_fnv = output_fingerprint(&captured.blocks);
    assert!(
        captured.report.faults.frames_dropped > 0 && captured.report.faults.shard_kills > 0,
        "fault menu should actually fire at these rates: {:?}",
        captured.report.faults
    );

    // Replay strips the source-side sites (those frames were never logged);
    // everything downstream re-fires from the logged seq numbers, and the
    // log rides along read-only so shard rebuilds re-fire too.
    let stripped = spec.without_source_sites();
    for threaded in [false, true] {
        let ro = CaptureLog::open(&dir).unwrap();
        let packets = ro.read_all().unwrap();
        let p = graph(&gen, &seq, &cfg, 4)
            .with_faults(FaultInjector::new(99, stripped.clone()))
            .with_replay_source(packets)
            .with_capture_log(ro);
        let replayed = if threaded {
            p.run_threaded()
        } else {
            p.run_inline()
        };
        assert_eq!(block_data(&captured), block_data(&replayed));
        assert_eq!(
            output_fingerprint(&replayed.blocks),
            captured_fnv,
            "replay (threaded={threaded}) must be FNV bit-exact"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn killed_shards_rebuild_from_the_log_and_stay_bit_exact() {
    let dir = temp_dir("rebuild");
    let (gen, seq) = generator(5, 18);
    let cfg = HybridConfig {
        frames: 6,
        shards: 4,
        ..Default::default()
    };
    let clean = graph(&gen, &seq, &cfg, 3).run_inline();
    assert_eq!(clean.report.outcome, RunOutcome::Completed);
    let clean_fnv = output_fingerprint(&clean.blocks);

    let spec = FaultSpec::parse("shard.kill=1").unwrap();
    let log = CaptureLog::create(&dir).unwrap();
    let out = graph(&gen, &seq, &cfg, 3)
        .with_faults(FaultInjector::new(7, spec))
        .with_capture_log(log)
        .run_inline();
    assert_eq!(
        out.report.outcome,
        RunOutcome::Completed,
        "a rebuilt shard loss is not degradation"
    );
    assert!(out.report.faults.shard_kills > 0);
    assert_eq!(out.report.faults.degrading(), 0);
    assert_eq!(out.report.shard_rebuilds, out.report.faults.shard_kills);
    assert_eq!(out.report.shards_lost, 0);
    assert!(out.report.lost_mz_ranges.is_empty());
    assert_eq!(block_data(&clean), block_data(&out));
    assert_eq!(output_fingerprint(&out.blocks), clean_fnv);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn shard_loss_without_a_log_degrades_and_zeroes_the_range() {
    let (gen, seq) = generator(5, 18);
    let cfg = HybridConfig {
        frames: 6,
        shards: 4,
        ..Default::default()
    };
    let clean = graph(&gen, &seq, &cfg, 2).run_inline();
    assert!(
        clean.blocks.iter().any(|b| b.data.iter().any(|&v| v != 0)),
        "sanity: the clean run must produce signal"
    );

    // Rate 1 kills every shard of every block; with no capture log armed
    // nothing can be rebuilt, so the whole m/z width drains zeros.
    let spec = FaultSpec::parse("shard.kill=1").unwrap();
    let out = graph(&gen, &seq, &cfg, 2)
        .with_faults(FaultInjector::new(7, spec))
        .run_inline();
    assert_eq!(out.report.outcome, RunOutcome::Degraded);
    assert_eq!(out.report.shard_rebuilds, 0);
    assert_eq!(out.report.shards_lost, 4 * 2, "4 shards x 2 blocks");
    assert_eq!(out.report.lost_mz_ranges.len(), 8);
    let (lo, hi) = (
        out.report.lost_mz_ranges.iter().map(|r| r.0).min().unwrap(),
        out.report.lost_mz_ranges.iter().map(|r| r.1).max().unwrap(),
    );
    assert_eq!((lo, hi), (0, 18), "ranges must tile the full m/z width");
    for b in &out.blocks {
        assert!(
            b.data.iter().all(|&v| v == 0),
            "block {} must drain zeros for lost ranges",
            b.index
        );
    }
    // Determinism: the degraded run is a pure function of (seed, spec).
    let spec = FaultSpec::parse("shard.kill=1").unwrap();
    let again = graph(&gen, &seq, &cfg, 2)
        .with_faults(FaultInjector::new(7, spec))
        .run_inline();
    assert_eq!(block_data(&out), block_data(&again));
    assert_eq!(out.report.lost_mz_ranges, again.report.lost_mz_ranges);
}

#[test]
fn rebuild_re_bins_when_a_binner_precedes_the_accumulator() {
    let dir = temp_dir("binned");
    let (gen, seq) = generator(4, 24);
    let cfg = HybridConfig {
        frames: 5,
        shards: 3,
        binner: Some(MzBinner::uniform(24, 8)),
        ..Default::default()
    };
    let clean = graph(&gen, &seq, &cfg, 2).run_inline();
    let clean_fnv = output_fingerprint(&clean.blocks);

    let spec = FaultSpec::parse("shard.kill=1").unwrap();
    let log = CaptureLog::create(&dir).unwrap();
    let out = graph(&gen, &seq, &cfg, 2)
        .with_faults(FaultInjector::new(21, spec))
        .with_capture_log(log)
        .run_inline();
    assert_eq!(out.report.outcome, RunOutcome::Completed);
    assert!(out.report.shard_rebuilds > 0);
    assert_eq!(
        output_fingerprint(&out.blocks),
        clean_fnv,
        "rebuild must re-bin logged fine frames before folding"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
