//! Property-based tests of the acquisition/deconvolution core.

use htims_core::acquisition::{acquire, AcquireOptions, GateSchedule};
use htims_core::deconvolution::{apply_columnwise, Deconvolver};
use htims_core::metrics::fidelity;
use ims_physics::{DriftTofMap, Instrument, Workload};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn small_block(
    degree: u32,
    seed: u64,
    use_trap: bool,
) -> (GateSchedule, htims_core::acquisition::AcquiredData) {
    let n = (1usize << degree) - 1;
    let mut inst = Instrument::with_drift_bins(n);
    inst.tof.n_bins = 40;
    let workload = Workload::single_calibrant();
    let schedule = GateSchedule::multiplexed(degree);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let data = acquire(
        &inst,
        &workload,
        &schedule,
        10,
        AcquireOptions {
            use_trap,
            background_mean: 0.01,
        },
        &mut rng,
    );
    (schedule, data)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn weighted_zero_lambda_equals_exact(degree in 4u32..7, seed in 0u64..200) {
        let (schedule, data) = small_block(degree, seed, false);
        let a = Deconvolver::Exact.deconvolve(&schedule, &data);
        let b = Deconvolver::Weighted { lambda: 0.0 }.deconvolve(&schedule, &data);
        for (x, y) in a.data().iter().zip(b.data().iter()) {
            prop_assert!((x - y).abs() < 1e-6 * (1.0 + x.abs()));
        }
    }

    #[test]
    fn acquisition_deterministic(degree in 4u32..7, seed in 0u64..200, trap in any::<bool>()) {
        let (_, a) = small_block(degree, seed, trap);
        let (_, b) = small_block(degree, seed, trap);
        prop_assert_eq!(a.accumulated.data(), b.accumulated.data());
    }

    #[test]
    fn utilization_and_kernel_bounds(degree in 4u32..7, seed in 0u64..100, trap in any::<bool>()) {
        let (_, data) = small_block(degree, seed, trap);
        prop_assert!((0.0..=1.0).contains(&data.ion_utilization),
            "utilization {}", data.ion_utilization);
        prop_assert!(data.effective_kernel.iter().all(|&h| h >= 0.0));
        prop_assert!(data.packet_charges >= 0.0);
    }

    #[test]
    fn identity_columnwise_is_noop(dn in 2usize..12, mn in 2usize..12, seed in 0u64..50) {
        let mut map = DriftTofMap::zeros(dn, mn);
        for (i, v) in map.data_mut().iter_mut().enumerate() {
            *v = ((i as u64 + seed) % 13) as f64;
        }
        let out = apply_columnwise(&map, |col| col.to_vec());
        prop_assert_eq!(out.data(), map.data());
    }

    #[test]
    fn fidelity_of_self_is_perfect(seed in 0u64..200, n in 8usize..64) {
        let profile: Vec<f64> = (0..n)
            .map(|i| (((i as u64 + seed) % 11) as f64) + 0.1)
            .collect();
        let f = fidelity(&profile, &profile, 0.05);
        prop_assert!(f.pearson > 1.0 - 1e-9);
        prop_assert!(f.nrmse < 1e-9);
        prop_assert!(f.artifact_level < 1e-9);
    }

    #[test]
    fn storage_formats_round_trip_arbitrary_maps(
        dn in 1usize..12,
        mn in 1usize..20,
        seed in 0u64..1000,
        fill_mod in 1usize..10,
    ) {
        use htims_core::format::{quantise_f32, StoredBlock};
        let mut map = DriftTofMap::zeros(dn, mn);
        for (i, v) in map.data_mut().iter_mut().enumerate() {
            // Mix of zeros and positive values.
            if (i as u64).wrapping_mul(seed + 1).is_multiple_of(fill_mod as u64) {
                *v = ((i as u64 ^ seed) % 100_000) as f64 / 7.0;
            }
        }
        let block = StoredBlock {
            frames: seed,
            bin_width_s: 1e-4,
            mz_min: 200.0,
            mz_max: 2200.0,
            map,
        };
        let expect = quantise_f32(&block.map);
        let dense = StoredBlock::from_binary(block.to_binary_dense()).unwrap();
        prop_assert_eq!(dense.map.data(), expect.data());
        let sparse = StoredBlock::from_binary(block.to_binary_sparse()).unwrap();
        prop_assert_eq!(sparse.map.data(), expect.data());
        let json = StoredBlock::from_json(&block.to_json()).unwrap();
        prop_assert_eq!(json, block);
    }

    #[test]
    fn kernel_similarity_is_scale_invariant(seed in 1u64..500, n in 3usize..40, scale in 0.1..50.0f64) {
        use htims_core::kernel::kernel_similarity;
        let a: Vec<f64> = (0..n).map(|i| (((i as u64 + seed) % 13) + 1) as f64).collect();
        let b: Vec<f64> = a.iter().map(|v| v * scale).collect();
        prop_assert!((kernel_similarity(&a, &b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deconvolution_recovers_planted_peak_location(degree in 5u32..8, seed in 0u64..100) {
        let (schedule, data) = small_block(degree, seed, false);
        let map = Deconvolver::SimplexFast.deconvolve(&schedule, &data);
        let got = map.total_ion_drift_profile();
        let truth = data.truth.total_ion_drift_profile();
        let (apex_got, _) = ims_signal::stats::argmax(&got).unwrap();
        let (apex_truth, _) = ims_signal::stats::argmax(&truth).unwrap();
        prop_assert!(apex_got.abs_diff(apex_truth) <= 1,
            "apex {apex_got} vs truth {apex_truth}");
    }
}
