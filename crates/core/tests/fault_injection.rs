//! Integration tests of deterministic fault injection and the supervised
//! threaded executor: zero-rate specs are bit-identical to no-fault runs,
//! chaotic runs are a pure function of `(seed, spec)`, failures surface as
//! structured errors instead of process aborts, and the executor drains
//! cleanly under early EOF, poisoned stages, and watchdog-cancelled stalls.

use htims_core::acquisition::{acquire, AcquireOptions, GateSchedule};
use htims_core::fault::{FaultInjector, FaultSpec};
use htims_core::hybrid::{hybrid_pipeline, FrameGenerator, HybridConfig};
use htims_core::pipeline::{
    DeconvBackend, Pipeline, PipelineError, PipelineOutput, RunOutcome, SupervisorConfig,
};
use ims_prs::MSequence;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Duration;

fn generator(degree: u32, mz_bins: usize) -> (FrameGenerator, MSequence) {
    let bins = (1usize << degree) - 1;
    let mut inst = ims_physics::Instrument::with_drift_bins(bins);
    inst.tof.n_bins = mz_bins;
    let w = ims_physics::Workload::single_calibrant();
    let schedule = GateSchedule::multiplexed(degree);
    let mut rng = ChaCha8Rng::seed_from_u64(17);
    let data = acquire(&inst, &w, &schedule, 1, AcquireOptions::default(), &mut rng);
    let seq = match schedule {
        GateSchedule::Multiplexed { seq } => seq,
        _ => unreachable!(),
    };
    (FrameGenerator::new(&data, &inst.adc, 42), seq)
}

/// A small standard graph: `blocks` blocks of `frames` frames each, FPGA
/// backend, streaming semantics (partial tail blocks discarded).
fn graph(gen: &FrameGenerator, seq: &MSequence, frames: u64, blocks: u64) -> Pipeline {
    let cfg = HybridConfig {
        frames,
        channel_depth: 2,
        ..Default::default()
    };
    let backend = DeconvBackend::fpga(seq, cfg.deconv);
    hybrid_pipeline(gen, seq, &cfg, frames * blocks, frames, false, backend)
}

fn block_data(out: &PipelineOutput) -> Vec<(u64, u64, Vec<i64>)> {
    out.blocks
        .iter()
        .map(|b| (b.index, b.frames, b.data.clone()))
        .collect()
}

#[test]
fn same_seed_and_spec_reproduce_faults_and_output_bit_for_bit() {
    let (gen, seq) = generator(5, 18);
    let spec = FaultSpec::parse("frame.drop=0.2,dma.bitflip=1e-4,deconv.fail=0.5").unwrap();
    let run = |exec_threaded: bool| {
        let p = graph(&gen, &seq, 4, 3).with_faults(FaultInjector::new(99, spec.clone()));
        if exec_threaded {
            p.run_threaded()
        } else {
            p.run_inline()
        }
    };
    let a = run(true);
    let b = run(true);
    assert_eq!(block_data(&a), block_data(&b));
    assert_eq!(a.report.faults, b.report.faults);
    assert_eq!(a.report.frames_quarantined, b.report.frames_quarantined);
    assert_eq!(a.report.deconv_fallbacks, b.report.deconv_fallbacks);
    assert_eq!(a.report.outcome, RunOutcome::Degraded);
    assert!(a.report.faults.total() > 0, "{:?}", a.report.faults);
    // Injection decisions are pure functions of (seed, site, index), so
    // the inline executor draws the *same* faults.
    let c = run(false);
    assert_eq!(a.report.faults, c.report.faults);
    assert_eq!(block_data(&a), block_data(&c));
}

#[test]
fn certain_deconv_failure_degrades_to_bit_identical_software_fallback() {
    let (gen, seq) = generator(5, 18);
    let clean = graph(&gen, &seq, 3, 2).run_threaded();
    assert_eq!(clean.report.outcome, RunOutcome::Completed);

    let spec = FaultSpec::parse("deconv.fail=1").unwrap();
    let out = graph(&gen, &seq, 3, 2)
        .with_faults(FaultInjector::new(7, spec))
        .run_threaded();
    assert_eq!(out.report.outcome, RunOutcome::Degraded);
    assert!(out.report.errors.is_empty(), "{:?}", out.report.errors);
    assert_eq!(out.report.deconv_fallbacks, 2, "every block fell back");
    assert!(out.report.faults.deconv_failures > 0);
    // The software panel engine is bit-exact with the FPGA model, so the
    // degraded run's blocks match the clean run's exactly.
    assert_eq!(block_data(&out), block_data(&clean));
}

#[test]
fn deconv_failure_without_fallback_is_a_structured_error_not_an_abort() {
    let (gen, seq) = generator(5, 18);
    let spec = FaultSpec::parse("deconv.fail=1").unwrap();
    let out = graph(&gen, &seq, 3, 2)
        .with_faults(FaultInjector::new(7, spec))
        .with_supervisor(SupervisorConfig {
            deconv_fallback: false,
            ..Default::default()
        })
        .run_threaded();
    assert_eq!(out.report.outcome, RunOutcome::Failed);
    assert!(
        out.report.errors.iter().any(|e| matches!(
            e,
            PipelineError::StagePanicked { stage, .. } if stage == "deconvolve"
        )),
        "{:?}",
        out.report.errors
    );
    assert!(out.blocks.is_empty(), "poisoned stage emits nothing");
    // The rest of the report is still populated (partial but structured):
    // source + link + accumulate + deconvolve.
    assert_eq!(out.report.stages.len(), 4);
}

#[test]
fn permanent_stall_trips_the_watchdog_with_source_blame() {
    let (gen, seq) = generator(5, 18);
    // Every frame stalls for 10 minutes; the watchdog must cancel it.
    let spec = FaultSpec::parse("source.stall=600s@1").unwrap();
    let started = std::time::Instant::now();
    let out = graph(&gen, &seq, 3, 2)
        .with_faults(FaultInjector::new(7, spec))
        .with_supervisor(SupervisorConfig {
            stall_timeout: Some(Duration::from_millis(250)),
            ..Default::default()
        })
        .run_threaded();
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "watchdog did not break the stall"
    );
    assert_eq!(out.report.outcome, RunOutcome::Failed);
    assert!(
        out.report.errors.iter().any(|e| matches!(
            e,
            PipelineError::StageStalled { stage, timeout_ms: 250 } if stage == "source"
        )),
        "{:?}",
        out.report.errors
    );
}

#[test]
fn survivable_stalls_only_degrade_the_run() {
    let (gen, seq) = generator(5, 18);
    // 2 ms stalls under a 2 s watchdog: annoying, not fatal.
    let spec = FaultSpec::parse("source.stall=2ms@0.5").unwrap();
    let clean = graph(&gen, &seq, 3, 2).run_threaded();
    let out = graph(&gen, &seq, 3, 2)
        .with_faults(FaultInjector::new(7, spec))
        .with_supervisor(SupervisorConfig {
            stall_timeout: Some(Duration::from_secs(2)),
            ..Default::default()
        })
        .run_threaded();
    assert_eq!(out.report.outcome, RunOutcome::Degraded);
    assert!(out.report.errors.is_empty(), "{:?}", out.report.errors);
    assert!(out.report.faults.stalls > 0);
    assert_eq!(block_data(&out), block_data(&clean), "stalls lose no data");
}

#[test]
fn bitflip_storm_quarantines_frames_and_still_completes() {
    let (gen, seq) = generator(5, 18);
    // ~1 flipped bit per ~2 frames on average at this payload size.
    let spec = FaultSpec::parse("dma.bitflip=3e-5").unwrap();
    let out = graph(&gen, &seq, 4, 3)
        .with_faults(FaultInjector::new(3, spec))
        .run_threaded();
    assert_eq!(out.report.outcome, RunOutcome::Degraded);
    assert!(out.report.faults.bitflips > 0);
    assert_eq!(
        out.report.frames_quarantined,
        out.report.faults.bitflips.min(12),
        "every corrupted frame is quarantined exactly once"
    );
    assert!(out.report.errors.is_empty());
}

#[test]
fn flight_dump_after_forced_degraded_carries_the_quarantined_frames_chain() {
    let dir = std::env::temp_dir().join(format!("htims_flight_{}", std::process::id()));
    let (gen, seq) = generator(5, 18);
    let spec = FaultSpec::parse("dma.bitflip=3e-5").unwrap();
    let out = graph(&gen, &seq, 4, 3)
        .with_faults(FaultInjector::new(3, spec))
        .with_flight_dump(dir.clone(), "testcfg")
        .run_threaded();
    assert_eq!(out.report.outcome, RunOutcome::Degraded);
    assert!(out.report.frames_quarantined > 0);
    let dump = out.report.flight_dump.as_deref().expect("dump written");
    let text = std::fs::read_to_string(dump).unwrap();
    let (header, events) = ims_obs::flight::parse_dump(&text).unwrap();
    assert_eq!(header.schema_version, ims_obs::FLIGHT_SCHEMA_VERSION);
    assert_eq!(header.outcome, "degraded");
    assert_eq!(header.reason, "quarantine");
    // No fatal error to blame, so blame falls back to the stage that
    // quarantined the most frames.
    assert_eq!(header.blamed_stage.as_deref(), Some("accumulate"));
    assert!(header.fault_site_count("dma.bitflip") > 0);
    assert!(!header.quarantined_frames.is_empty());
    assert!(!events.is_empty());
    // The quarantined frame's causal chain walks the whole graph in
    // order: source egress, link ingress, the bitflip fault site, link
    // egress, accumulate ingress, and finally the quarantine verdict.
    let q = header.quarantined_frames[0];
    let chain = header
        .chains
        .iter()
        .find(|c| c.item == q)
        .expect("chain for the quarantined frame");
    let steps: Vec<(&str, &str)> = chain
        .events
        .iter()
        .map(|e| (e.stage.as_str(), e.kind.as_str()))
        .collect();
    let expect = [
        ("source", "frame_egress"),
        ("link", "frame_ingress"),
        ("dma.bitflip", "fault"),
        ("link", "frame_egress"),
        ("accumulate", "frame_ingress"),
        ("accumulate", "quarantine"),
    ];
    assert_eq!(steps, expect, "full stage chain for frame {q}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn early_source_eof_drains_the_threaded_executor_without_deadlock() {
    let (gen, seq) = generator(5, 18);
    // Fewer frames than one block, streaming semantics: the accumulator
    // never fills a block and the tail is discarded — every stage must
    // still see EOF and the run must return (regression: a drain bug here
    // hangs the join).
    let cfg = HybridConfig {
        frames: 8,
        channel_depth: 2,
        ..Default::default()
    };
    let backend = DeconvBackend::fpga(&seq, cfg.deconv);
    let out = hybrid_pipeline(&gen, &seq, &cfg, 3, 8, false, backend).run_threaded();
    assert_eq!(out.blocks.len(), 0);
    assert_eq!(out.report.outcome, RunOutcome::Completed);
    assert_eq!(out.report.stages[0].items_out, 3, "source emitted 3 frames");

    // Zero frames: the source closes immediately.
    let backend = DeconvBackend::fpga(&seq, cfg.deconv);
    let out = hybrid_pipeline(&gen, &seq, &cfg, 0, 8, false, backend).run_threaded();
    assert_eq!(out.blocks.len(), 0);
    assert_eq!(out.report.outcome, RunOutcome::Completed);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The acceptance gate: an armed injector whose spec is all-zero must
    /// not perturb a single bit of output, on either executor, and the
    /// run must still report `Completed` with zero fault counts.
    #[test]
    fn zero_rate_spec_is_bit_identical_to_the_unarmed_pipeline(
        threaded in any::<bool>(),
        frames in 1u64..5,
        blocks in 1u64..3,
        seed in any::<u64>(),
    ) {
        let (gen, seq) = generator(5, 18);
        let spec = FaultSpec::parse(
            "dma.bitflip=0,frame.drop=0,deconv.fail=0,source.stall=0ms@0"
        ).unwrap();
        prop_assert!(spec.is_zero());
        let run = |armed: bool| {
            let mut p = graph(&gen, &seq, frames, blocks);
            if armed {
                p = p.with_faults(FaultInjector::new(seed, spec.clone()));
            }
            if threaded { p.run_threaded() } else { p.run_inline() }
        };
        let clean = run(false);
        let armed = run(true);
        prop_assert_eq!(block_data(&clean), block_data(&armed));
        prop_assert_eq!(armed.report.outcome, RunOutcome::Completed);
        prop_assert_eq!(armed.report.faults.total(), 0);
        prop_assert_eq!(armed.report.frames_quarantined, 0);
        prop_assert_eq!(armed.report.deconv_fallbacks, 0);
        prop_assert!(armed.report.errors.is_empty());
    }
}
