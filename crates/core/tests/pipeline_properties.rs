//! Property tests of the pipeline executors: output must be invariant to
//! channel depth (back-pressure intensity), executor choice (inline vs
//! threaded vs work-stealing scheduled), and deconvolution backend (all
//! backends are bit-exact equals).

use htims_core::acquisition::{acquire, AcquireOptions, GateSchedule};
use htims_core::hybrid::{
    hybrid_pipeline, run_hybrid_streaming_with_backend, run_software_reference_binned_range,
    run_software_reference_range, FrameGenerator, HybridConfig,
};
use htims_core::pipeline::{output_fingerprint, DeconvBackend};
use ims_fpga::MzBinner;
use ims_prs::MSequence;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn generator(degree: u32, mz_bins: usize) -> (FrameGenerator, MSequence) {
    let bins = (1usize << degree) - 1;
    let mut inst = ims_physics::Instrument::with_drift_bins(bins);
    inst.tof.n_bins = mz_bins;
    let w = ims_physics::Workload::single_calibrant();
    let schedule = GateSchedule::multiplexed(degree);
    let mut rng = ChaCha8Rng::seed_from_u64(17);
    let data = acquire(&inst, &w, &schedule, 1, AcquireOptions::default(), &mut rng);
    let seq = match schedule {
        GateSchedule::Multiplexed { seq } => seq,
        _ => unreachable!(),
    };
    (FrameGenerator::new(&data, &inst.adc, 42), seq)
}

fn backend(idx: usize, seq: &MSequence, cfg: &HybridConfig) -> DeconvBackend {
    match idx {
        0 => DeconvBackend::fpga(seq, cfg.deconv),
        1 => DeconvBackend::naive(seq, cfg.deconv),
        _ => DeconvBackend::software(seq, cfg.deconv, 2),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn output_invariant_to_depth_backend_and_executor(
        depth_idx in 0usize..3,
        backend_idx in 0usize..3,
        frames in 1u64..8,
        n_blocks in 1usize..4,
    ) {
        let (gen, seq) = generator(5, 18);
        let cfg = HybridConfig {
            frames,
            channel_depth: [1usize, 2, 8][depth_idx],
            ..Default::default()
        };
        // Threaded executor, varying depth and backend…
        let streaming = run_hybrid_streaming_with_backend(
            &gen, &seq, &cfg, n_blocks, backend(backend_idx, &seq, &cfg));
        prop_assert_eq!(streaming.blocks.len(), n_blocks);
        // …must match the inline FPGA-backend reference block for block.
        for (b, block) in streaming.blocks.iter().enumerate() {
            let reference = run_software_reference_range(
                &gen, &seq, b as u64 * frames, frames, cfg.deconv);
            prop_assert_eq!(block, &reference);
        }
    }

    #[test]
    fn binned_output_invariant_to_depth_and_backend(
        depth_idx in 0usize..3,
        backend_idx in 0usize..3,
        frames in 1u64..6,
    ) {
        let (gen, seq) = generator(5, 24);
        let binner = MzBinner::uniform(24, 6);
        let cfg = HybridConfig {
            frames,
            channel_depth: [1usize, 2, 8][depth_idx],
            binner: Some(binner.clone()),
            ..Default::default()
        };
        let streaming = run_hybrid_streaming_with_backend(
            &gen, &seq, &cfg, 2, backend(backend_idx, &seq, &cfg));
        prop_assert_eq!(streaming.blocks.len(), 2);
        for (b, block) in streaming.blocks.iter().enumerate() {
            let reference = run_software_reference_binned_range(
                &gen, &seq, b as u64 * frames, frames, cfg.deconv, &binner);
            prop_assert_eq!(block, &reference);
        }
    }

    #[test]
    fn output_invariant_across_inline_threaded_and_scheduled(
        depth_idx in 0usize..3,
        backend_idx in 0usize..3,
        frames in 1u64..8,
        n_blocks in 1usize..4,
    ) {
        let (gen, seq) = generator(5, 18);
        let cfg = HybridConfig {
            frames,
            channel_depth: [1usize, 2, 8][depth_idx],
            ..Default::default()
        };
        let total = frames * n_blocks as u64;
        let build = || hybrid_pipeline(
            &gen, &seq, &cfg, total, frames, false, backend(backend_idx, &seq, &cfg));
        // The same graph under all three executors: the single-thread
        // reference, the compatibility wrapper, and the work-stealing
        // runtime must produce bit-identical block streams.
        let inline = build().run_inline();
        let threaded = build().run_threaded();
        let scheduled = build().run_scheduled();
        prop_assert_eq!(inline.blocks.len(), n_blocks);
        let reference = output_fingerprint(&inline.blocks);
        prop_assert_eq!(output_fingerprint(&threaded.blocks), reference);
        prop_assert_eq!(output_fingerprint(&scheduled.blocks), reference);
        // Report tags still distinguish the entry points.
        prop_assert_eq!(inline.report.executor.as_str(), "inline");
        prop_assert_eq!(threaded.report.executor.as_str(), "threaded");
        prop_assert_eq!(scheduled.report.executor.as_str(), "scheduled");
    }
}
