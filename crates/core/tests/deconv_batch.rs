//! Property tests pinning down the batched panel engine's bit-identity:
//! for every deconvolution method, every panel width, and both executors,
//! the panel-blocked schedule computes exactly the same bits as the scalar
//! per-column reference path.

use htims_core::acquisition::{acquire, AcquireOptions, AcquiredData, GateSchedule};
use htims_core::deconvolution::{apply_columnwise, Deconvolver};
use htims_core::hybrid::{hybrid_pipeline, FrameGenerator, HybridConfig};
use htims_core::pipeline::DeconvBackend;
use htims_core::BatchDeconvolver;
use ims_physics::{Instrument, Workload};
use ims_prs::MSequence;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn small_block(degree: u32, mz: usize, seed: u64) -> (Instrument, GateSchedule, AcquiredData) {
    let n = (1usize << degree) - 1;
    let mut inst = Instrument::with_drift_bins(n);
    inst.tof.n_bins = mz;
    let workload = Workload::single_calibrant();
    let schedule = GateSchedule::multiplexed(degree);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let data = acquire(
        &inst,
        &workload,
        &schedule,
        6,
        AcquireOptions::default(),
        &mut rng,
    );
    (inst, schedule, data)
}

const METHODS: [Deconvolver; 5] = [
    Deconvolver::Identity,
    Deconvolver::SimplexFast,
    Deconvolver::Exact,
    Deconvolver::Weighted { lambda: 1e-5 },
    Deconvolver::WeightedIdeal { lambda: 1e-4 },
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Non-power-of-two m/z widths exercise ragged tail panels; `mz` itself
    // as a width exercises the single-panel case; widths above `mz` clamp.
    #[test]
    fn batched_is_bit_identical_across_methods_and_widths(
        degree in 4u32..6,
        mz_idx in 0usize..3,
        seed in 0u64..100,
        method_idx in 0usize..5,
    ) {
        let mz = [37usize, 53, 70][mz_idx];
        let (_, schedule, data) = small_block(degree, mz, seed);
        let method = METHODS[method_idx];
        let solver = method.column_solver(&schedule, &data);
        let reference = apply_columnwise(&data.accumulated, |col| solver(col));
        for width in [1usize, 7, 64, mz] {
            let engine = BatchDeconvolver::new(&method, &schedule, &data)
                .with_panel_width(width);
            let serial = engine.deconvolve_map(&data.accumulated);
            let parallel = engine.deconvolve_map_parallel(&data.accumulated);
            for (i, (r, s)) in reference.data().iter().zip(serial.data().iter()).enumerate() {
                prop_assert_eq!(
                    r.to_bits(), s.to_bits(),
                    "{} width {} cell {}: {} vs {}", method.name(), width, i, r, s
                );
            }
            for (r, p) in reference.data().iter().zip(parallel.data().iter()) {
                prop_assert_eq!(r.to_bits(), p.to_bits());
            }
        }
    }

    // Every backend (FWHT FPGA model, naive MAC model, panel-parallel
    // software) on both executors produces the same integer words.
    #[test]
    fn backends_and_executors_agree_exactly(
        degree in 4u32..6,
        mz_idx in 0usize..2,
        seed in 0u64..50,
        threads in 1usize..3,
    ) {
        let mz = [19usize, 33][mz_idx];
        let (inst, _, data) = small_block(degree, mz, seed);
        let seq = MSequence::new(degree);
        let gen = FrameGenerator::new(&data, &inst.adc, seed ^ 0x5a);
        let cfg = HybridConfig { frames: 4, ..Default::default() };

        let mut reference: Option<Vec<i64>> = None;
        for backend_name in ["fpga", "naive", "software"] {
            for threaded in [false, true] {
                let backend =
                    DeconvBackend::from_name(backend_name, &seq, cfg.deconv, threads)
                        .expect("known backend");
                let graph = hybrid_pipeline(&gen, &seq, &cfg, 8, 4, true, backend);
                let out = if threaded { graph.run_threaded() } else { graph.run_inline() };
                let words: Vec<i64> = out
                    .blocks
                    .iter()
                    .flat_map(|b| b.data.iter().copied())
                    .collect();
                match &reference {
                    None => reference = Some(words),
                    Some(r) => prop_assert_eq!(
                        r, &words,
                        "{} ({} executor) diverged", backend_name,
                        if threaded { "threaded" } else { "inline" }
                    ),
                }
            }
        }
    }
}

/// The run report carries per-stage throughput: the deconvolve stage's cell
/// count matches the data volume, and the derived rates are populated.
#[test]
fn pipeline_report_populates_throughput_fields() {
    let degree = 6u32;
    let n = (1usize << degree) - 1;
    let mz = 64usize;
    let (inst, _, data) = small_block(degree, mz, 9);
    let seq = MSequence::new(degree);
    let gen = FrameGenerator::new(&data, &inst.adc, 9);
    let cfg = HybridConfig {
        frames: 4,
        ..Default::default()
    };
    let backend = DeconvBackend::software(&seq, cfg.deconv, 1);
    let blocks = 3u64;
    let out = hybrid_pipeline(&gen, &seq, &cfg, 4 * blocks, 4, false, backend).run_threaded();

    let stage = out.report.stage("deconvolve").expect("deconvolve stage");
    assert_eq!(stage.cells, blocks * (n * mz) as u64);
    assert!(stage.busy_seconds > 0.0);
    assert!(stage.mcells_per_second > 0.0);
    assert!(stage.items_per_second > 0.0);
    assert!(out.report.deconv_blocks_per_second > 0.0);
    assert!(out.report.deconv_mcells_per_second > 0.0);
    // Stages that do not process 2-D blocks report zero cells.
    assert_eq!(out.report.stage("link").expect("link stage").cells, 0);
}

// --- Sparse vs dense equivalence across occupancy -------------------------
//
// The skip-zero sparse path must be bit-identical to the dense engine at
// *every* occupancy level: empty maps, a handful of hot columns, and maps
// dense enough that the entry point falls back to the dense path.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn sparse_map_matches_dense_across_occupancy(
        degree in 4u32..6,
        mz in 30usize..70,
        seed in 0u64..100,
        keep_every in 1usize..20,
        method_idx in 0usize..5,
    ) {
        let (_, schedule, data) = small_block(degree, mz, seed);
        // Thin the acquired block down to every `keep_every`-th column:
        // keep_every == 1 keeps the block dense (occupancy above the
        // threshold → dense fallback), large values leave only a few hot
        // columns (the CSR skip path).
        let mut map = data.accumulated.clone();
        for d in 0..map.drift_bins() {
            let row = map.drift_row_mut(d);
            for (m, v) in row.iter_mut().enumerate() {
                if m % keep_every != 0 {
                    *v = 0.0;
                }
            }
        }
        let method = METHODS[method_idx];
        let engine = BatchDeconvolver::new(&method, &schedule, &data);
        let dense = engine.deconvolve_map(&map);
        let sparse = engine.deconvolve_map_sparse(&map);
        prop_assert_eq!(dense.drift_bins(), sparse.drift_bins());
        for (i, (a, b)) in dense.data().iter().zip(sparse.data().iter()).enumerate() {
            prop_assert!(
                a.to_bits() == b.to_bits(),
                "cell {i} diverges at keep_every={keep_every}: {a} vs {b}"
            );
        }
    }
}

/// Thread scaling must be monotone non-decreasing in effective threads:
/// requesting more threads than the machine has clamps to the machine
/// width instead of oversubscribing, so t=4 throughput is never worse
/// than t=1 beyond timing noise (on a 1-CPU machine both run the identical
/// serial path).
#[test]
fn thread_scaling_smoke_t4_not_slower_than_t1() {
    use htims_core::parallel::deconvolve_with_threads;
    let degree = 6u32;
    let (_, schedule, data) = small_block(degree, 96, 3);
    let method = Deconvolver::Weighted { lambda: 1e-6 };
    let best = |threads: usize| {
        (0..5)
            .map(|_| deconvolve_with_threads(&method, &schedule, &data, threads).1)
            .fold(f64::INFINITY, f64::min)
    };
    // Warm up the cost-model histogram and caches before timing.
    let _ = deconvolve_with_threads(&method, &schedule, &data, 4);
    let t1 = best(1);
    let t4 = best(4);
    // Generous tolerance: this is a monotonicity smoke test, not a perf
    // gate (the bench + compare workflow owns the real numbers).
    assert!(
        t4 <= t1 * 1.5 + 1e-3,
        "t=4 ({t4:.6}s) more than 1.5x slower than t=1 ({t1:.6}s)"
    );
    // Bit-identity across thread counts rides along for free.
    let (a, _) = deconvolve_with_threads(&method, &schedule, &data, 1);
    let (b, _) = deconvolve_with_threads(&method, &schedule, &data, 4);
    assert!(a
        .data()
        .iter()
        .zip(b.data().iter())
        .all(|(x, y)| x.to_bits() == y.to_bits()));
}
