//! Scheduler-telemetry invariants on private pools.
//!
//! The `sched.*` counters exist so steal storms, injector pressure, and
//! queue dwell are diagnosable in production; these tests pin the
//! accounting identities they rely on:
//!
//! * every executed task was dequeued by exactly one pop path, so
//!   `local_pops + injector_pops + steals == executed`;
//! * a single-worker pool records **no** queue-dwell samples (one shard
//!   means no cross-worker queueing — dwell would only measure the
//!   worker's own backlog).
//!
//! Each test uses its own private [`Scheduler`] pool, so counts are
//! isolated from the global pool other tests share.

use htims_core::acquisition::{acquire, AcquireOptions, GateSchedule};
use htims_core::hybrid::{hybrid_pipeline, FrameGenerator, HybridConfig};
use htims_core::pipeline::{DeconvBackend, RunOutcome, SchedStatsSnapshot, Scheduler};
use ims_prs::MSequence;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Waits for the pool to go quiescent with at least `min_executed` task
/// dispatches: `run_batch` returns when all *jobs* finished, but the
/// queued batch *task* may still await a worker pop (the caller can
/// outrun the pool on trivial jobs), and a popped task increments
/// `executed` a few instructions after the pop counter. Bounded — fails
/// loudly instead of hanging (the 50 ms park-timeout rescan guarantees
/// every queued task is eventually dispatched).
fn settled(sched: &Scheduler, min_executed: u64) -> SchedStatsSnapshot {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let s = sched.stats();
        if s.executed >= min_executed && s.local_pops + s.injector_pops + s.steals == s.executed {
            return s;
        }
        assert!(
            Instant::now() < deadline,
            "scheduler telemetry never settled: {s:?}"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

fn run_rounds(sched: &Scheduler, rounds: usize, jobs_per_round: usize) -> usize {
    let hits = AtomicUsize::new(0);
    for _ in 0..rounds {
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..jobs_per_round)
            .map(|_| {
                Box::new(|| {
                    hits.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        sched.run_batch(jobs);
    }
    hits.load(Ordering::Relaxed)
}

#[test]
fn pops_account_for_every_executed_task() {
    let sched = Scheduler::new(3);
    let hits = run_rounds(&sched, 8, 64);
    assert_eq!(hits, 8 * 64);
    // Every round pushed its batch task into the injector; each is
    // dispatched by some worker exactly once (even if the caller already
    // drained its jobs).
    let s = settled(&sched, 8);
    assert_eq!(s.local_pops + s.injector_pops + s.steals, s.executed);
    sched.shutdown();
}

#[test]
fn single_worker_pool_records_no_queue_dwell() {
    let sched = Scheduler::new(1);
    run_rounds(&sched, 4, 32);
    let s = settled(&sched, 4);
    assert_eq!(
        s.dwell_samples, 0,
        "threads=1 must not record queue dwell: {s:?}"
    );
    sched.shutdown();
}

fn generator(degree: u32, mz_bins: usize) -> (FrameGenerator, MSequence) {
    let bins = (1usize << degree) - 1;
    let mut inst = ims_physics::Instrument::with_drift_bins(bins);
    inst.tof.n_bins = mz_bins;
    let w = ims_physics::Workload::single_calibrant();
    let schedule = GateSchedule::multiplexed(degree);
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let data = acquire(&inst, &w, &schedule, 1, AcquireOptions::default(), &mut rng);
    let seq = match schedule {
        GateSchedule::Multiplexed { seq } => seq,
        _ => unreachable!(),
    };
    (FrameGenerator::new(&data, &inst.adc, 42), seq)
}

#[test]
fn pipeline_run_on_a_private_pool_keeps_the_identity() {
    let (gen, seq) = generator(5, 18);
    let cfg = HybridConfig {
        frames: 4,
        ..Default::default()
    };
    let sched = Scheduler::new(2);
    let pipeline = hybrid_pipeline(
        &gen,
        &seq,
        &cfg,
        8,
        4,
        false,
        DeconvBackend::fpga(&seq, cfg.deconv),
    );
    let out = pipeline.spawn_on(&sched).join();
    assert_eq!(out.report.outcome, RunOutcome::Completed);
    // A graph run schedules at least one task per node (source + stages).
    let s = settled(&sched, 3);
    assert_eq!(s.local_pops + s.injector_pops + s.steals, s.executed);
    sched.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The accounting identity holds for any pool width and batch shape,
    /// and dwell stays empty whenever the pool has a single worker.
    #[test]
    fn telemetry_invariants_hold(
        threads in 1usize..=4,
        rounds in 1usize..=4,
        jobs in 1usize..=48,
    ) {
        let sched = Scheduler::new(threads);
        let hits = run_rounds(&sched, rounds, jobs);
        prop_assert_eq!(hits, rounds * jobs);
        let s = settled(&sched, rounds as u64);
        prop_assert_eq!(s.local_pops + s.injector_pops + s.steals, s.executed);
        if threads == 1 {
            prop_assert_eq!(s.dwell_samples, 0);
        }
        sched.shutdown();
    }
}
