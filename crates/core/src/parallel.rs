//! The CPU software component: rayon-parallel deconvolution.
//!
//! On the Cray XD1 the software side ran across Opteron cores; here the
//! stand-in is a rayon pool of configurable width, which drives the E8
//! scaling study. The unit of parallelism is a *panel* of adjacent m/z
//! columns (see [`crate::deconv_batch`]): panels are embarrassingly
//! parallel, each worker reuses one scratch arena, and within a panel the
//! kernels run unit-stride across columns — so scaling stays near linear
//! until memory bandwidth intervenes.

use crate::acquisition::{AcquiredData, GateSchedule};
use crate::deconv_batch::BatchDeconvolver;
use crate::deconvolution::Deconvolver;
use ims_physics::DriftTofMap;

/// Deconvolves all m/z column panels in parallel on the current rayon pool.
/// Bit-identical to [`Deconvolver::deconvolve`].
pub fn deconvolve_parallel(
    method: &Deconvolver,
    schedule: &GateSchedule,
    data: &AcquiredData,
) -> DriftTofMap {
    BatchDeconvolver::new(method, schedule, data).deconvolve_map_parallel(&data.accumulated)
}

/// Runs the parallel deconvolution on a dedicated pool of `threads` threads
/// and returns the result with the wall time in seconds — one row of the
/// E8 scaling table.
pub fn deconvolve_with_threads(
    method: &Deconvolver,
    schedule: &GateSchedule,
    data: &AcquiredData,
    threads: usize,
) -> (DriftTofMap, f64) {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("failed to build rayon pool");
    let start = std::time::Instant::now();
    let out = pool.install(|| deconvolve_parallel(method, schedule, data));
    (out, start.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acquisition::{acquire, AcquireOptions};
    use ims_physics::{Instrument, Workload};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn block() -> (GateSchedule, AcquiredData) {
        let mut inst = Instrument::with_drift_bins(127);
        inst.tof.n_bins = 120;
        let w = Workload::three_peptide_mix();
        let schedule = GateSchedule::multiplexed(7);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let data = acquire(
            &inst,
            &w,
            &schedule,
            20,
            AcquireOptions::default(),
            &mut rng,
        );
        (schedule, data)
    }

    #[test]
    fn parallel_matches_serial() {
        let (schedule, data) = block();
        let method = Deconvolver::Weighted { lambda: 1e-5 };
        let serial = method.deconvolve(&schedule, &data);
        let parallel = deconvolve_parallel(&method, &schedule, &data);
        for (a, b) in serial.data().iter().zip(parallel.data().iter()) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn explicit_thread_count_works() {
        let (schedule, data) = block();
        let method = Deconvolver::SimplexFast;
        let (one, _t1) = deconvolve_with_threads(&method, &schedule, &data, 1);
        let (four, _t4) = deconvolve_with_threads(&method, &schedule, &data, 4);
        for (a, b) in one.data().iter().zip(four.data().iter()) {
            assert!((a - b).abs() < 1e-10);
        }
    }
}
