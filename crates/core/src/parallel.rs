//! The CPU software component: scheduler-parallel deconvolution.
//!
//! On the Cray XD1 the software side ran across Opteron cores; here the
//! stand-in is the work-stealing [`Scheduler`] pool, which drives the E8
//! scaling study. The unit of parallelism is a *slab* of adjacent m/z
//! column panels (see [`crate::deconv_batch`]), sized from a measured
//! per-panel cost model: slabs are embarrassingly parallel, each task
//! reuses one scratch arena, and within a panel the kernels run
//! unit-stride across columns — so scaling stays near linear until memory
//! bandwidth intervenes. Requested thread counts are clamped to the
//! machine's [`std::thread::available_parallelism`]: oversubscription
//! adds context-switch noise but never throughput, and the clamp keeps
//! measured throughput monotone in the requested thread count.

use crate::acquisition::{AcquiredData, GateSchedule};
use crate::deconv_batch::BatchDeconvolver;
use crate::deconvolution::Deconvolver;
use crate::pipeline::Scheduler;
use ims_physics::DriftTofMap;

/// Deconvolves all m/z column panels in parallel on the process-wide
/// scheduler pool. Bit-identical to [`Deconvolver::deconvolve`].
pub fn deconvolve_parallel(
    method: &Deconvolver,
    schedule: &GateSchedule,
    data: &AcquiredData,
) -> DriftTofMap {
    BatchDeconvolver::new(method, schedule, data).deconvolve_map_parallel(&data.accumulated)
}

/// Runs the parallel deconvolution at `threads` effective threads and
/// returns the result with the wall time in seconds — one row of the E8
/// scaling table.
///
/// `threads` is clamped to the machine's available parallelism; a clamped
/// count of one runs the serial panel path directly (bit-identical, no
/// fan-out overhead). Beyond one, a private pool of `threads − 1` workers
/// is spun up and the calling thread participates as the final executor,
/// so exactly `threads` threads touch panel data.
pub fn deconvolve_with_threads(
    method: &Deconvolver,
    schedule: &GateSchedule,
    data: &AcquiredData,
    threads: usize,
) -> (DriftTofMap, f64) {
    let engine = BatchDeconvolver::new(method, schedule, data);
    let effective = threads.max(1).min(
        std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1),
    );
    let start = std::time::Instant::now();
    let out = if effective <= 1 {
        engine.deconvolve_map(&data.accumulated)
    } else {
        let pool = Scheduler::new(effective - 1);
        let out = engine.deconvolve_map_scheduled(&data.accumulated, &pool);
        pool.shutdown();
        out
    };
    (out, start.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acquisition::{acquire, AcquireOptions};
    use ims_physics::{Instrument, Workload};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn block() -> (GateSchedule, AcquiredData) {
        let mut inst = Instrument::with_drift_bins(127);
        inst.tof.n_bins = 120;
        let w = Workload::three_peptide_mix();
        let schedule = GateSchedule::multiplexed(7);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let data = acquire(
            &inst,
            &w,
            &schedule,
            20,
            AcquireOptions::default(),
            &mut rng,
        );
        (schedule, data)
    }

    #[test]
    fn parallel_matches_serial() {
        let (schedule, data) = block();
        let method = Deconvolver::Weighted { lambda: 1e-5 };
        let serial = method.deconvolve(&schedule, &data);
        let parallel = deconvolve_parallel(&method, &schedule, &data);
        for (a, b) in serial.data().iter().zip(parallel.data().iter()) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn explicit_thread_count_works() {
        let (schedule, data) = block();
        let method = Deconvolver::SimplexFast;
        let (one, _t1) = deconvolve_with_threads(&method, &schedule, &data, 1);
        let (four, _t4) = deconvolve_with_threads(&method, &schedule, &data, 4);
        for (a, b) in one.data().iter().zip(four.data().iter()) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn scheduled_matches_serial_bitwise_on_private_pool() {
        let (schedule, data) = block();
        for method in [
            Deconvolver::Weighted { lambda: 1e-5 },
            Deconvolver::SimplexFast,
        ] {
            let engine = BatchDeconvolver::new(&method, &schedule, &data);
            let serial = engine.deconvolve_map(&data.accumulated);
            let pool = Scheduler::new(3);
            // Force the slab fan-out even on single-core machines, where
            // the public entry points delegate to the serial path.
            let scheduled = engine.deconvolve_map_executors(&data.accumulated, &pool, 4);
            pool.shutdown();
            for (a, b) in serial.data().iter().zip(scheduled.data().iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}
