//! LC-IMS-MS: the three-dimensional platform (retention × drift × m/z).
//!
//! Entry 19's pitch ("An LC-IMS-MS Platform Providing Increased Dynamic
//! Range for High-Throughput Proteomic Studies") is that a fast RPLC
//! gradient in front of the multiplexed IMS-TOF multiplies peak capacity
//! and decongests the (drift, m/z) plane: species that co-drift and share
//! m/z bins in direct infusion elute at different LC times and become
//! separately quantifiable. This module runs the full 3-D experiment as a
//! sequence of per-LC-step multiplexed acquisitions over the time-varying
//! eluate.

use crate::acquisition::{acquire, AcquireOptions, GateSchedule};
use crate::analysis::{build_library, find_features, match_library, Identification};
use crate::deconvolution::Deconvolver;
use ims_physics::lc::LcGradient;
use ims_physics::peptide::Peptide;
use ims_physics::{Instrument, Workload};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// An LC-IMS-MS sample: peptides with loadings.
#[derive(Debug, Clone)]
pub struct LcSample {
    /// `(peptide, abundance at elution apex)` pairs.
    pub peptides: Vec<(Peptide, f64)>,
}

impl LcSample {
    /// Uniform loading.
    pub fn uniform(peptides: Vec<Peptide>, abundance: f64) -> Self {
        Self {
            peptides: peptides.into_iter().map(|p| (p, abundance)).collect(),
        }
    }

    /// The instantaneous workload at LC time `t` (species whose elution
    /// factor falls below `min_factor` are dropped).
    pub fn workload_at(&self, gradient: &LcGradient, t_s: f64, min_factor: f64) -> Workload {
        let mut species = Vec::new();
        for (pep, abundance) in &self.peptides {
            let f = gradient.elution_factor(pep, t_s);
            if f < min_factor {
                continue;
            }
            species.extend(pep.to_species(abundance * f));
        }
        Workload {
            name: format!("lc-eluate@{t_s:.0}s"),
            species,
        }
    }

    /// The workload integrated over an LC window `[t0, t1]` — what a
    /// stepped acquisition actually collects (narrow elution peaks are
    /// captured even when the window is much wider than the peak).
    pub fn workload_for_window(
        &self,
        gradient: &LcGradient,
        t0_s: f64,
        t1_s: f64,
        min_factor: f64,
    ) -> Workload {
        let mut species = Vec::new();
        for (pep, abundance) in &self.peptides {
            let f = gradient.mean_elution_factor(pep, t0_s, t1_s);
            if f < min_factor {
                continue;
            }
            species.extend(pep.to_species(abundance * f));
        }
        Workload {
            name: format!("lc-window@{t0_s:.0}-{t1_s:.0}s"),
            species,
        }
    }
}

/// One identified 3-D feature.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LcIdentification {
    /// LC step index.
    pub lc_step: usize,
    /// LC time, seconds.
    pub lc_time_s: f64,
    /// The 2-D identification at that step.
    pub id: Identification,
}

/// Result of an LC-IMS-MS run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LcRunResult {
    /// All per-step identifications.
    pub identifications: Vec<LcIdentification>,
    /// Unique species names identified across the run.
    pub unique_species: Vec<String>,
    /// Total 2-D features found across steps.
    pub total_features: usize,
    /// LC peak capacity of the gradient.
    pub lc_peak_capacity: f64,
}

impl LcRunResult {
    /// Number of unique species identified.
    pub fn unique_count(&self) -> usize {
        self.unique_species.len()
    }
}

/// Configuration of an LC-IMS-MS run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LcRunConfig {
    /// Number of LC sampling steps across the gradient.
    pub lc_steps: usize,
    /// IMS frames accumulated per LC step.
    pub frames_per_step: u64,
    /// Feature threshold (σ).
    pub feature_sigma: f64,
    /// Minimum elution factor to include a species in a step.
    pub min_elution_factor: f64,
    /// Drift-bin matching tolerance.
    pub drift_tol: usize,
    /// m/z-bin matching tolerance.
    pub mz_tol: usize,
}

impl Default for LcRunConfig {
    fn default() -> Self {
        Self {
            lc_steps: 30,
            frames_per_step: 20,
            feature_sigma: 8.0,
            min_elution_factor: 0.05,
            drift_tol: 2,
            mz_tol: 1,
        }
    }
}

/// Runs the full LC-IMS-MS experiment.
#[allow(clippy::too_many_arguments)]
pub fn run_lcms(
    instrument: &Instrument,
    sample: &LcSample,
    gradient: &LcGradient,
    schedule: &GateSchedule,
    method: &Deconvolver,
    cfg: &LcRunConfig,
    options: AcquireOptions,
    rng: &mut impl Rng,
) -> LcRunResult {
    let mut identifications = Vec::new();
    let mut unique = std::collections::BTreeSet::new();
    let mut total_features = 0usize;
    let step_s = gradient.duration_s / cfg.lc_steps as f64;
    for step in 0..cfg.lc_steps {
        let t = (step as f64 + 0.5) * step_s;
        let workload = sample.workload_for_window(
            gradient,
            step as f64 * step_s,
            (step as f64 + 1.0) * step_s,
            cfg.min_elution_factor,
        );
        if workload.is_empty() {
            continue;
        }
        let data = acquire(
            instrument,
            &workload,
            schedule,
            cfg.frames_per_step,
            options,
            rng,
        );
        let map = method.deconvolve(schedule, &data);
        let features = find_features(&map, cfg.feature_sigma);
        total_features += features.len();
        let library = build_library(instrument, &workload);
        for id in match_library(&features, &library, cfg.drift_tol, cfg.mz_tol) {
            unique.insert(id.entry.name.clone());
            identifications.push(LcIdentification {
                lc_step: step,
                lc_time_s: t,
                id,
            });
        }
    }
    LcRunResult {
        identifications,
        unique_species: unique.into_iter().collect(),
        total_features,
        lc_peak_capacity: gradient.peak_capacity(),
    }
}

/// The direct-infusion comparator: the whole sample at once, one long
/// acquisition of the same total duration.
#[allow(clippy::too_many_arguments)]
pub fn run_infusion(
    instrument: &Instrument,
    sample: &LcSample,
    schedule: &GateSchedule,
    method: &Deconvolver,
    total_frames: u64,
    cfg: &LcRunConfig,
    options: AcquireOptions,
    rng: &mut impl Rng,
) -> LcRunResult {
    let mut species = Vec::new();
    for (pep, abundance) in &sample.peptides {
        species.extend(pep.to_species(*abundance));
    }
    let workload = Workload {
        name: "direct-infusion".into(),
        species,
    };
    let data = acquire(instrument, &workload, schedule, total_frames, options, rng);
    let map = method.deconvolve(schedule, &data);
    let features = find_features(&map, cfg.feature_sigma);
    let library = build_library(instrument, &workload);
    let ids = match_library(&features, &library, cfg.drift_tol, cfg.mz_tol);
    let unique: std::collections::BTreeSet<String> =
        ids.iter().map(|i| i.entry.name.clone()).collect();
    LcRunResult {
        identifications: ids
            .into_iter()
            .map(|id| LcIdentification {
                lc_step: 0,
                lc_time_s: 0.0,
                id,
            })
            .collect(),
        unique_species: unique.into_iter().collect(),
        total_features: features.len(),
        lc_peak_capacity: 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ims_physics::peptide::{spike_peptides, synthetic_protein, tryptic_digest};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn sample() -> LcSample {
        let mut peptides = spike_peptides();
        peptides.extend(
            tryptic_digest(&synthetic_protein(5, 200), 0, 7)
                .into_iter()
                .take(8),
        );
        LcSample::uniform(peptides, 1.0)
    }

    #[test]
    fn workload_varies_over_the_gradient() {
        let s = sample();
        let g = LcGradient::default();
        let early = s.workload_at(&g, 100.0, 0.05);
        let mid = s.workload_at(&g, 450.0, 0.05);
        // Different species elute at different times.
        assert_ne!(early.name, mid.name);
        let all_times: Vec<f64> = s
            .peptides
            .iter()
            .map(|(p, _)| g.retention_time_s(p))
            .collect();
        let spread = all_times.iter().cloned().fold(0.0f64, f64::max)
            - all_times.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread > 200.0, "LC spread {spread}");
    }

    #[test]
    fn lcms_run_identifies_most_peptide_ions() {
        let s = sample();
        let degree = 7;
        let n = (1usize << degree) - 1;
        let mut inst = Instrument::with_drift_bins(n);
        inst.tof.n_bins = 900;
        let schedule = GateSchedule::multiplexed(degree);
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let result = run_lcms(
            &inst,
            &s,
            &LcGradient::default(),
            &schedule,
            &Deconvolver::Weighted { lambda: 1e-6 },
            &LcRunConfig {
                lc_steps: 15,
                frames_per_step: 15,
                ..Default::default()
            },
            AcquireOptions::default(),
            &mut rng,
        );
        // 14 peptides → ≥20 ion species should be identified somewhere.
        assert!(
            result.unique_count() >= 15,
            "only {} unique ions identified",
            result.unique_count()
        );
        assert!(result.lc_peak_capacity > 30.0);
        // Identifications are tagged with plausible LC times.
        for lcid in &result.identifications {
            assert!(lcid.lc_time_s >= 0.0 && lcid.lc_time_s <= 900.0);
        }
    }

    #[test]
    fn infusion_runs_and_reports() {
        let s = sample();
        let degree = 7;
        let n = (1usize << degree) - 1;
        let mut inst = Instrument::with_drift_bins(n);
        inst.tof.n_bins = 900;
        let schedule = GateSchedule::multiplexed(degree);
        let mut rng = ChaCha8Rng::seed_from_u64(78);
        let result = run_infusion(
            &inst,
            &s,
            &schedule,
            &Deconvolver::Weighted { lambda: 1e-6 },
            150,
            &LcRunConfig::default(),
            AcquireOptions::default(),
            &mut rng,
        );
        assert!(result.unique_count() > 0);
        assert_eq!(result.lc_peak_capacity, 1.0);
    }
}
