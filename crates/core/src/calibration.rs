//! Mass recalibration: removing systematic mass-measurement errors with
//! regression models and a-priori knowledge of the sample.
//!
//! The companion paper (entry 47, "Elimination of systematic mass
//! measurement errors in LC-MS based proteomics using regression models
//! and a priori partial knowledge of the sample content") replaces
//! internal calibrant infusion with software: confidently identified
//! species whose true masses are known become calibrants, a regression of
//! the ppm error against m/z (and other explanatory variables) captures
//! the systematic drift, and applying the fitted correction leaves only
//! the statistical (centroid-noise) floor — which multi-measurement
//! averaging then reduces further. The paper reports a 1.2–2× reduction of
//! the error σ from the regression and 1.8–3.7× overall with averaging.

use crate::analysis::Feature;
use ims_physics::{DriftTofMap, Instrument, Workload};
use ims_signal::matrix::Matrix;
use ims_signal::stats;
use serde::{Deserialize, Serialize};

/// One calibrant observation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MassMeasurement {
    /// The species' true m/z, Th.
    pub true_mz: f64,
    /// The measured (centroided) m/z, Th.
    pub measured_mz: f64,
    /// Feature intensity (confidence weight).
    pub intensity: f64,
}

impl MassMeasurement {
    /// Signed mass error, ppm.
    pub fn error_ppm(&self) -> f64 {
        (self.measured_mz - self.true_mz) / self.true_mz * 1e6
    }
}

/// Harvests calibrant measurements: species of the (known) workload whose
/// predicted position matches a found feature within the tolerances. The
/// measured m/z is re-centroided over `centroid_halfwidth` m/z bins of the
/// deconvolved map at the feature's drift position (wider and more
/// accurate than the generic 3×3 feature centroid — the peak must be
/// covered to well past its σ for a ppm-grade centroid).
pub fn collect_measurements(
    instrument: &Instrument,
    workload: &Workload,
    map: &DriftTofMap,
    features: &[Feature],
    drift_tol: usize,
    mz_tol: usize,
    centroid_halfwidth: usize,
) -> Vec<MassMeasurement> {
    let width = instrument.tof.bin_width();
    let mut out = Vec::new();
    for sp in &workload.species {
        let t = instrument.tube.drift_time_s(sp);
        let drift_bin = (t / instrument.bin_width_s).round() as usize;
        if drift_bin >= instrument.drift_bins {
            continue;
        }
        let Some(mz_bin) = instrument
            .tof
            .bin_of(instrument.tof.mass_error.distort(sp.mz()))
        else {
            continue;
        };
        // Best matching feature.
        let best = features
            .iter()
            .filter(|f| {
                f.drift_bin.abs_diff(drift_bin) <= drift_tol && f.mz_bin.abs_diff(mz_bin) <= mz_tol
            })
            .max_by(|a, b| a.intensity.partial_cmp(&b.intensity).expect("finite"));
        if let Some(f) = best {
            // Re-centroid in a dedicated m/z window at this drift position.
            // The window must stay below half the isotopic spacing
            // (1.00235/z Th) or the A+1 peak drags the centroid upward —
            // exactly the bias a real centroiding algorithm must avoid.
            let spacing_bins = 1.002_35 / sp.charge as f64 / width;
            let hw = centroid_halfwidth.min(((spacing_bins / 2.0) as usize).saturating_sub(1));
            let hw = hw.max(1);
            let d_lo = f.drift_bin.saturating_sub(1);
            let d_hi = (f.drift_bin + 1).min(map.drift_bins() - 1);
            let m_lo = f.mz_bin.saturating_sub(hw);
            let m_hi = (f.mz_bin + hw).min(map.mz_bins() - 1);
            let window: Vec<f64> = (m_lo..=m_hi)
                .map(|m| (d_lo..=d_hi).map(|d| map.at(d, m)).sum::<f64>())
                .collect();
            let floor = window.iter().cloned().fold(f64::INFINITY, f64::min);
            let mut wsum = 0.0;
            let mut csum = 0.0;
            for (k, &v) in window.iter().enumerate() {
                let w = (v - floor).max(0.0);
                wsum += w;
                csum += w * (m_lo + k) as f64;
            }
            if wsum <= 0.0 {
                continue;
            }
            let centroid = csum / wsum;
            let measured_mz = instrument.tof.mz_min + (centroid + 0.5) * width;
            out.push(MassMeasurement {
                true_mz: sp.mz(),
                measured_mz,
                intensity: f.intensity,
            });
        }
    }
    out
}

/// A fitted linear recalibration: `ppm(m/z) = offset + slope·(m/z−1000)/1000`
/// (the same basis as `ims_physics::tof::MassError`, so a perfect fit
/// recovers the injected distortion exactly).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MassRecalibration {
    /// Constant term, ppm.
    pub offset_ppm: f64,
    /// m/z-dependent term, ppm per 1000 Th.
    pub slope_ppm: f64,
}

impl MassRecalibration {
    /// Least-squares fit of the error model to calibrant measurements.
    /// Returns `None` with fewer than 3 calibrants.
    pub fn fit(measurements: &[MassMeasurement]) -> Option<Self> {
        if measurements.len() < 3 {
            return None;
        }
        let design = Matrix::from_fn(measurements.len(), 2, |i, j| {
            if j == 0 {
                1.0
            } else {
                (measurements[i].measured_mz - 1000.0) / 1000.0
            }
        });
        let target: Vec<f64> = measurements.iter().map(|m| m.error_ppm()).collect();
        let coeffs = design.least_squares(&target, 0.0)?;
        Some(Self {
            offset_ppm: coeffs[0],
            slope_ppm: coeffs[1],
        })
    }

    /// Robust fit: alternate least squares with trimming of calibrants
    /// whose residual exceeds `k`×MAD (mismatched or contaminated features
    /// — the reason the paper insists on *confident* identifications).
    /// Returns the fit and the inlier mask.
    pub fn fit_robust(
        measurements: &[MassMeasurement],
        k: f64,
        iterations: usize,
    ) -> Option<(Self, Vec<bool>)> {
        let mut mask = vec![true; measurements.len()];
        let mut cal = Self::fit(measurements)?;
        for _ in 0..iterations {
            let residuals: Vec<f64> = measurements
                .iter()
                .map(|m| {
                    let corrected = cal.correct(m.measured_mz);
                    (corrected - m.true_mz) / m.true_mz * 1e6
                })
                .collect();
            let inlier_res: Vec<f64> = residuals
                .iter()
                .zip(mask.iter())
                .filter(|(_, &keep)| keep)
                .map(|(&r, _)| r)
                .collect();
            let sigma = stats::mad_sigma(&inlier_res).max(1e-6);
            let med = stats::median(&inlier_res);
            let mut changed = false;
            for (i, &r) in residuals.iter().enumerate() {
                let keep = (r - med).abs() <= k * sigma;
                if keep != mask[i] {
                    mask[i] = keep;
                    changed = true;
                }
            }
            let inliers: Vec<MassMeasurement> = measurements
                .iter()
                .zip(mask.iter())
                .filter(|(_, &keep)| keep)
                .map(|(m, _)| *m)
                .collect();
            cal = Self::fit(&inliers)?;
            if !changed {
                break;
            }
        }
        Some((cal, mask))
    }

    /// The modelled systematic error at a measured m/z, ppm.
    pub fn ppm_at(&self, measured_mz: f64) -> f64 {
        self.offset_ppm + self.slope_ppm * (measured_mz - 1000.0) / 1000.0
    }

    /// Removes the modelled error from a measured m/z.
    pub fn correct(&self, measured_mz: f64) -> f64 {
        measured_mz / (1.0 + self.ppm_at(measured_mz) * 1e-6)
    }
}

/// RMS of the ppm errors, optionally after applying a recalibration.
pub fn rms_error_ppm(measurements: &[MassMeasurement], cal: Option<&MassRecalibration>) -> f64 {
    if measurements.is_empty() {
        return 0.0;
    }
    let sq: f64 = measurements
        .iter()
        .map(|m| {
            let measured = match cal {
                Some(c) => c.correct(m.measured_mz),
                None => m.measured_mz,
            };
            let ppm = (measured - m.true_mz) / m.true_mz * 1e6;
            ppm * ppm
        })
        .sum();
    (sq / measurements.len() as f64).sqrt()
}

/// Multi-measurement averaging: groups measurements of the same species
/// (by true m/z) across replicate runs and averages the corrected m/z —
/// the random (centroid) error shrinks ~√k.
pub fn average_replicates(
    replicates: &[Vec<MassMeasurement>],
    cal: Option<&MassRecalibration>,
) -> Vec<MassMeasurement> {
    use std::collections::BTreeMap;
    // Key on the true m/z (exact — same species object across runs).
    let mut groups: BTreeMap<u64, (f64, Vec<f64>, f64)> = BTreeMap::new();
    for run in replicates {
        for m in run {
            let corrected = match cal {
                Some(c) => c.correct(m.measured_mz),
                None => m.measured_mz,
            };
            let key = m.true_mz.to_bits();
            let entry = groups.entry(key).or_insert((m.true_mz, Vec::new(), 0.0));
            entry.1.push(corrected);
            entry.2 += m.intensity;
        }
    }
    groups
        .into_values()
        .map(|(true_mz, values, intensity)| MassMeasurement {
            true_mz,
            measured_mz: stats::mean(&values),
            intensity,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_measurements(
        offset: f64,
        slope: f64,
        noise: f64,
        n: usize,
    ) -> Vec<MassMeasurement> {
        (0..n)
            .map(|i| {
                let true_mz = 300.0 + 1700.0 * i as f64 / n as f64;
                let ppm = offset
                    + slope * (true_mz - 1000.0) / 1000.0
                    + noise * ((i * 37 % 11) as f64 - 5.0) / 5.0;
                MassMeasurement {
                    true_mz,
                    measured_mz: true_mz * (1.0 + ppm * 1e-6),
                    intensity: 100.0,
                }
            })
            .collect()
    }

    #[test]
    fn fit_recovers_injected_model_exactly_without_noise() {
        let ms = synthetic_measurements(250.0, -120.0, 0.0, 40);
        let cal = MassRecalibration::fit(&ms).unwrap();
        assert!(
            (cal.offset_ppm - 250.0).abs() < 0.5,
            "offset {}",
            cal.offset_ppm
        );
        assert!(
            (cal.slope_ppm + 120.0).abs() < 1.0,
            "slope {}",
            cal.slope_ppm
        );
        assert!(rms_error_ppm(&ms, Some(&cal)) < 0.1);
    }

    #[test]
    fn correction_reduces_rms_with_noise() {
        let ms = synthetic_measurements(300.0, 150.0, 40.0, 60);
        let before = rms_error_ppm(&ms, None);
        let cal = MassRecalibration::fit(&ms).unwrap();
        let after = rms_error_ppm(&ms, Some(&cal));
        assert!(before > 250.0, "before {before}");
        assert!(after < 50.0, "after {after}");
        // Residual is the noise floor, not zero.
        assert!(after > 5.0);
    }

    #[test]
    fn too_few_calibrants_refused() {
        let ms = synthetic_measurements(10.0, 0.0, 0.0, 2);
        assert!(MassRecalibration::fit(&ms).is_none());
    }

    #[test]
    fn averaging_reduces_random_error() {
        // Three replicates with different pseudo-noise phases.
        let mk = |phase: usize| -> Vec<MassMeasurement> {
            (0..30)
                .map(|i| {
                    let true_mz = 400.0 + 50.0 * i as f64;
                    let noise = 30.0 * (((i * 7 + phase * 13) % 9) as f64 - 4.0) / 4.0;
                    MassMeasurement {
                        true_mz,
                        measured_mz: true_mz * (1.0 + noise * 1e-6),
                        intensity: 1.0,
                    }
                })
                .collect()
        };
        let reps = vec![mk(0), mk(1), mk(2)];
        let single_rms = rms_error_ppm(&reps[0], None);
        let averaged = average_replicates(&reps, None);
        let averaged_rms = rms_error_ppm(&averaged, None);
        assert!(
            averaged_rms < 0.8 * single_rms,
            "averaging {single_rms} -> {averaged_rms}"
        );
        assert_eq!(averaged.len(), 30);
    }

    #[test]
    fn correct_inverts_distortion() {
        let cal = MassRecalibration {
            offset_ppm: 100.0,
            slope_ppm: 50.0,
        };
        let true_mz = 800.0;
        let distorted = true_mz * (1.0 + cal.ppm_at(800.0) * 1e-6);
        // Correction uses the measured value's ppm — a second-order
        // approximation, exact to < 0.01 ppm at these magnitudes.
        let recovered = cal.correct(distorted);
        assert!((recovered - true_mz).abs() / true_mz * 1e6 < 0.05);
    }
}
