//! Dynamic multiplexing: adapting the acquisition to the ion-source
//! function.
//!
//! The "dynamically multiplexed" instrument (Belov et al. 2008, entry 22)
//! couples the analyser to the source's actual output: an electrospray's
//! current drifts and sputters over minutes, so a *static* acquisition
//! schedule either saturates the detector when the spray runs hot or
//! starves of ions when it runs cold. The dynamic controller measures the
//! delivered current each block and servoes the per-block integration
//! (frames per accumulated block) to a target ion dose — the block-level
//! generalisation of the trap AGC of experiment E9.
//!
//! Experiment E12 compares the two against a fluctuating source: the shape
//! target is that the dynamic controller holds the per-block SNR flat and
//! never saturates, while the static schedule does both, exactly as the
//! paper's "improved dynamic range and sensitivity throughout the
//! experiment" claim describes.

use crate::acquisition::{acquire, AcquireOptions, GateSchedule};
use crate::deconvolution::Deconvolver;
use crate::metrics::species_snr;
use ims_physics::{Instrument, Workload};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Per-block integration control.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum GainControl {
    /// Fixed frames per block regardless of the source.
    Static {
        /// Frames per block.
        frames: u64,
    },
    /// Frames chosen so the block collects ≈ `target_ions` analyte ions.
    Dynamic {
        /// Ion dose per block to aim for.
        target_ions: f64,
        /// Fewest frames allowed (latency bound).
        min_frames: u64,
        /// Most frames allowed (throughput bound).
        max_frames: u64,
    },
}

impl GainControl {
    /// Frames to integrate for a block given the measured landed ion rate
    /// (ions/s) and the frame duration.
    pub fn frames_for(&self, landed_rate: f64, frame_s: f64) -> u64 {
        match *self {
            GainControl::Static { frames } => frames,
            GainControl::Dynamic {
                target_ions,
                min_frames,
                max_frames,
            } => {
                if landed_rate <= 0.0 {
                    return max_frames;
                }
                let ions_per_frame = landed_rate * frame_s;
                let frames = (target_ions / ions_per_frame).round() as u64;
                frames.clamp(min_frames, max_frames)
            }
        }
    }
}

/// Result of one acquired block under a fluctuating source.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BlockResult {
    /// Source intensity factor of this block.
    pub source_factor: f64,
    /// Frames integrated.
    pub frames: u64,
    /// SNR of the monitor peak in the deconvolved block.
    pub snr: f64,
    /// Fraction of accumulated cells clamped at the ADC ceiling.
    pub saturated_fraction: f64,
    /// Quantitation response: monitor-peak area per frame per source
    /// factor (should be constant if calibration holds).
    pub calibrated_response: f64,
}

/// A deterministic, bounded source-fluctuation profile: slow sinusoidal
/// drift plus block-to-block sputter.
pub fn source_profile(blocks: usize, swing: f64, seed: u64) -> Vec<f64> {
    assert!((0.0..1.0).contains(&swing), "swing in [0,1)");
    (0..blocks)
        .map(|b| {
            let slow = (b as f64 / blocks as f64 * std::f64::consts::TAU).sin();
            let h = (b as u64)
                .wrapping_add(seed)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let sputter = ((h >> 40) as f64 / (1u64 << 24) as f64) - 0.5;
            (1.0 + swing * slow + 0.3 * swing * sputter).max(0.05)
        })
        .collect()
}

/// Runs a sequence of blocks against a fluctuating source under the given
/// control policy.
#[allow(clippy::too_many_arguments)]
pub fn run_blocks(
    instrument: &Instrument,
    workload: &Workload,
    schedule: &GateSchedule,
    method: &Deconvolver,
    monitor: (usize, usize),
    profile: &[f64],
    control: GainControl,
    rng: &mut impl Rng,
) -> Vec<BlockResult> {
    let frame_s = instrument.frame_duration_s();
    profile
        .iter()
        .map(|&factor| {
            let block_workload = workload.clone().scaled(factor);
            // The controller reads the source monitor (the landed rate).
            let landed = instrument.landed_rate(&block_workload);
            let frames = control.frames_for(landed, frame_s).max(1);
            let data = acquire(
                instrument,
                &block_workload,
                schedule,
                frames,
                AcquireOptions::default(),
                rng,
            );
            // Saturation census against the per-block ADC ceiling.
            let ceiling = instrument.adc.full_scale * frames as f64;
            let saturated = data
                .accumulated
                .data()
                .iter()
                .filter(|&&v| v >= ceiling * 0.999)
                .count() as f64
                / data.accumulated.data().len() as f64;
            let map = method.deconvolve(schedule, &data);
            let snr = species_snr(&map, monitor.0, monitor.1, 2);
            // Monitor-peak response, calibrated by integration and source.
            let lo = monitor.1.saturating_sub(1);
            let hi = (monitor.1 + 1).min(map.mz_bins() - 1);
            let profile_xic = map.drift_profile(lo, hi);
            let d_lo = monitor.0.saturating_sub(2);
            let d_hi = (monitor.0 + 3).min(profile_xic.len());
            let area: f64 = profile_xic[d_lo..d_hi].iter().sum();
            let calibrated_response = area / frames as f64 / factor;
            BlockResult {
                source_factor: factor,
                frames,
                snr,
                saturated_fraction: saturated,
                calibrated_response,
            }
        })
        .collect()
}

/// Coefficient of variation of the blocks' calibrated responses — the
/// quantitation-stability figure of merit.
pub fn response_cv(blocks: &[BlockResult]) -> f64 {
    let responses: Vec<f64> = blocks.iter().map(|b| b.calibrated_response).collect();
    let mean = ims_signal::stats::mean(&responses);
    if mean == 0.0 {
        return f64::NAN;
    }
    ims_signal::stats::std_dev(&responses) / mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::build_library;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup() -> (Instrument, Workload, GateSchedule, (usize, usize)) {
        let degree = 7;
        let n = (1usize << degree) - 1;
        let mut inst = Instrument::with_drift_bins(n);
        inst.tof.n_bins = 200;
        let workload = Workload::single_calibrant().scaled(0.01);
        let target = build_library(&inst, &workload)
            .into_iter()
            .next()
            .expect("calibrant in range");
        (
            inst,
            workload,
            GateSchedule::multiplexed(degree),
            (target.drift_bin, target.mz_bin),
        )
    }

    #[test]
    fn source_profile_is_bounded_and_deterministic() {
        let a = source_profile(20, 0.6, 3);
        let b = source_profile(20, 0.6, 3);
        assert_eq!(a, b);
        assert!(a.iter().all(|&f| f > 0.0 && f < 2.0));
        let spread = a.iter().cloned().fold(0.0f64, f64::max)
            - a.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread > 0.5, "profile too flat: {spread}");
    }

    #[test]
    fn dynamic_control_tracks_source() {
        let control = GainControl::Dynamic {
            target_ions: 1e6,
            min_frames: 2,
            max_frames: 1000,
        };
        let f_hot = control.frames_for(1e7, 0.02);
        let f_cold = control.frames_for(1e5, 0.02);
        assert!(f_cold > 50 * f_hot, "cold {f_cold} vs hot {f_hot}");
        // Clamping.
        assert_eq!(control.frames_for(1e12, 0.02), 2);
        assert_eq!(control.frames_for(0.0, 0.02), 1000);
    }

    #[test]
    fn dynamic_beats_static_on_snr_floor() {
        let (inst, workload, schedule, monitor) = setup();
        let profile = source_profile(6, 0.7, 9);
        let method = Deconvolver::SimplexFast;
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let static_blocks = run_blocks(
            &inst,
            &workload,
            &schedule,
            &method,
            monitor,
            &profile,
            GainControl::Static { frames: 12 },
            &mut rng,
        );
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        // Target the dose a nominal-source block of 12 frames collects.
        let nominal = inst.landed_rate(&workload) * inst.frame_duration_s() * 12.0;
        let dynamic_blocks = run_blocks(
            &inst,
            &workload,
            &schedule,
            &method,
            monitor,
            &profile,
            GainControl::Dynamic {
                target_ions: nominal,
                min_frames: 2,
                max_frames: 200,
            },
            &mut rng,
        );
        let min_snr =
            |blocks: &[BlockResult]| blocks.iter().map(|b| b.snr).fold(f64::INFINITY, f64::min);
        assert!(
            min_snr(&dynamic_blocks) > min_snr(&static_blocks),
            "dynamic floor {} vs static floor {}",
            min_snr(&dynamic_blocks),
            min_snr(&static_blocks)
        );
        // Dynamic frames vary with the source; static do not.
        assert!(dynamic_blocks
            .iter()
            .any(|b| b.frames != dynamic_blocks[0].frames));
        assert!(static_blocks.iter().all(|b| b.frames == 12));
    }

    #[test]
    fn response_cv_of_constant_blocks_is_zero() {
        let blocks: Vec<BlockResult> = (0..4)
            .map(|_| BlockResult {
                source_factor: 1.0,
                frames: 5,
                snr: 10.0,
                saturated_fraction: 0.0,
                calibrated_response: 3.3,
            })
            .collect();
        assert!(response_cv(&blocks) < 1e-12);
    }
}
