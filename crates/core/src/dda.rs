//! Data-dependent acquisition (DDA): TopN precursor selection with
//! exclusion lists across replicate runs.
//!
//! The companion paper (entry 13, "Advanced Precursor Ion Selection
//! Algorithms for Increased Depth of Bottom-Up Proteomic Profiling") shows
//! that conventional TopN DDA keeps re-fragmenting the same abundant
//! precursors: replicate runs overlap ~heavily and identifications
//! saturate. Excluding previously fragmented precursors (via an aligned
//! exclusion list) forces the instrument down the abundance ladder — 29 %
//! more peptides beyond the TopN saturation level — and excluding only
//! *identified* precursors (giving unidentified ones another chance) adds
//! a further ~10 %.
//!
//! The simulation runs replicate LC-IMS-MS experiments; each LC step
//! yields features, the TopN non-excluded features are "fragmented", and a
//! fragmentation event identifies its peptide with an SNR-dependent
//! success probability (weak precursors sometimes fail — the reason the
//! two exclusion policies differ).

use crate::acquisition::{acquire, AcquireOptions, GateSchedule};
use crate::analysis::{build_library, find_features, LibraryEntry};
use crate::deconvolution::Deconvolver;
use crate::lcms::LcSample;
use ims_physics::lc::LcGradient;
use ims_physics::Instrument;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Exclusion policy across runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExclusionPolicy {
    /// Plain TopN: no memory between runs.
    None,
    /// Exclude every precursor fragmented in any earlier run.
    Fragmented,
    /// Exclude only precursors that were fragmented *and identified*
    /// (unidentified ones get another chance).
    Identified,
}

/// DDA method parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DdaConfig {
    /// Precursors fragmented per LC step.
    pub top_n: usize,
    /// Exclusion policy.
    pub policy: ExclusionPolicy,
    /// Feature threshold (σ).
    pub feature_sigma: f64,
    /// Identification tolerance, drift bins.
    pub drift_tol: usize,
    /// Identification tolerance, m/z bins.
    pub mz_tol: usize,
    /// Exclusion-list matching tolerance, m/z bins.
    pub exclusion_mz_tol: usize,
    /// Exclusion-list LC alignment tolerance, steps: 0 = exact-step match
    /// (an *unaligned* list — breaks under retention drift), ≥1 = the
    /// aligned list of the paper.
    pub exclusion_step_tol: usize,
    /// Run-to-run retention drift amplitude, seconds (0 = perfectly
    /// reproducible chromatography).
    pub rt_drift_s: f64,
    /// SNR at which an MS/MS event identifies with probability ~63 %.
    pub id_snr_scale: f64,
}

impl Default for DdaConfig {
    fn default() -> Self {
        Self {
            top_n: 5,
            policy: ExclusionPolicy::None,
            feature_sigma: 6.0,
            drift_tol: 2,
            mz_tol: 1,
            exclusion_mz_tol: 2,
            exclusion_step_tol: 1,
            rt_drift_s: 0.0,
            id_snr_scale: 25.0,
        }
    }
}

/// Result of a replicate series.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DdaSeries {
    /// Cumulative unique peptide-ion identifications after each run.
    pub cumulative_unique: Vec<usize>,
    /// Total MS/MS events triggered across the series.
    pub msms_events: usize,
    /// Fraction of events that re-targeted an already-identified precursor.
    pub redundant_fraction: f64,
}

/// A fragmented-precursor record on the exclusion list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct ExclusionKey {
    lc_step: usize,
    mz_bin_coarse: usize,
}

/// Is the (step, m/z) position excluded, within the LC alignment tolerance?
fn is_excluded(
    excluded: &BTreeSet<ExclusionKey>,
    step: usize,
    mz_bin_coarse: usize,
    step_tol: usize,
) -> bool {
    let lo = step.saturating_sub(step_tol);
    for s in lo..=step + step_tol {
        if excluded.contains(&ExclusionKey {
            lc_step: s,
            mz_bin_coarse,
        }) {
            return true;
        }
    }
    false
}

/// Runs `n_runs` replicate LC-IMS-MS DDA experiments under a policy.
#[allow(clippy::too_many_arguments)]
pub fn run_series(
    instrument: &Instrument,
    sample: &LcSample,
    gradient: &LcGradient,
    schedule: &GateSchedule,
    method: &Deconvolver,
    lc_steps: usize,
    frames_per_step: u64,
    cfg: &DdaConfig,
    n_runs: usize,
    rng: &mut impl Rng,
) -> DdaSeries {
    let step_s = gradient.duration_s / lc_steps as f64;
    let mut identified: BTreeSet<String> = BTreeSet::new();
    let mut excluded: BTreeSet<ExclusionKey> = BTreeSet::new();
    let mut cumulative = Vec::with_capacity(n_runs);
    let mut events = 0usize;
    let mut redundant = 0usize;

    for run in 0..n_runs {
        // Each replicate sees its own (drifted) chromatography.
        let run_gradient = gradient.replicate(run, cfg.rt_drift_s);
        for step in 0..lc_steps {
            let workload = sample.workload_for_window(
                &run_gradient,
                step as f64 * step_s,
                (step as f64 + 1.0) * step_s,
                0.05,
            );
            if workload.is_empty() {
                continue;
            }
            let data = acquire(
                instrument,
                &workload,
                schedule,
                frames_per_step,
                AcquireOptions::default(),
                rng,
            );
            let map = method.deconvolve(schedule, &data);
            let features = find_features(&map, cfg.feature_sigma);
            let library = build_library(instrument, &workload);

            // TopN selection among non-excluded features.
            let mut selected = 0usize;
            for feature in &features {
                if selected >= cfg.top_n {
                    break;
                }
                let mz_bin_coarse = feature.mz_bin / (cfg.exclusion_mz_tol + 1);
                let key = ExclusionKey {
                    lc_step: step,
                    mz_bin_coarse,
                };
                if cfg.policy != ExclusionPolicy::None
                    && is_excluded(&excluded, step, mz_bin_coarse, cfg.exclusion_step_tol)
                {
                    continue;
                }
                selected += 1;
                events += 1;

                // "Fragment" the feature: does it correspond to a real
                // precursor, and does the MS/MS spectrum identify it?
                let hit: Option<&LibraryEntry> = library.iter().find(|e| {
                    e.drift_bin.abs_diff(feature.drift_bin) <= cfg.drift_tol
                        && e.mz_bin.abs_diff(feature.mz_bin) <= cfg.mz_tol
                });
                let mut was_identified = false;
                if let Some(entry) = hit {
                    if identified.contains(&entry.name) {
                        redundant += 1;
                    }
                    let p_success = 1.0 - (-feature.snr / cfg.id_snr_scale).exp();
                    if rng.gen::<f64>() < p_success {
                        identified.insert(entry.name.clone());
                        was_identified = true;
                    }
                }
                match cfg.policy {
                    ExclusionPolicy::None => {}
                    ExclusionPolicy::Fragmented => {
                        excluded.insert(key);
                    }
                    ExclusionPolicy::Identified => {
                        if was_identified {
                            excluded.insert(key);
                        }
                    }
                }
            }
        }
        cumulative.push(identified.len());
    }
    DdaSeries {
        cumulative_unique: cumulative,
        msms_events: events,
        redundant_fraction: if events > 0 {
            redundant as f64 / events as f64
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ims_physics::peptide::{spike_peptides, synthetic_protein, tryptic_digest};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup() -> (Instrument, LcSample, GateSchedule) {
        let degree = 6;
        let n = (1usize << degree) - 1;
        let mut inst = Instrument::with_drift_bins(n);
        inst.tof.n_bins = 600;
        let mut peptides = spike_peptides();
        peptides.extend(
            tryptic_digest(&synthetic_protein(9, 300), 0, 7)
                .into_iter()
                .take(12),
        );
        (
            inst,
            LcSample::uniform(peptides, 0.5),
            GateSchedule::multiplexed(degree),
        )
    }

    #[test]
    fn exclusion_beats_plain_topn_over_replicates() {
        let (inst, sample, schedule) = setup();
        let gradient = LcGradient::default();
        let method = Deconvolver::Weighted { lambda: 1e-6 };
        let run = |policy: ExclusionPolicy, seed: u64| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            run_series(
                &inst,
                &sample,
                &gradient,
                &schedule,
                &method,
                10,
                6,
                &DdaConfig {
                    top_n: 2,
                    policy,
                    ..Default::default()
                },
                3,
                &mut rng,
            )
        };
        let plain = run(ExclusionPolicy::None, 1);
        let excl = run(ExclusionPolicy::Fragmented, 1);
        assert!(
            excl.cumulative_unique.last() > plain.cumulative_unique.last(),
            "exclusion {:?} should beat plain {:?}",
            excl.cumulative_unique,
            plain.cumulative_unique
        );
        // Plain TopN wastes events on already-identified precursors.
        assert!(excl.redundant_fraction < plain.redundant_fraction);
    }

    #[test]
    fn alignment_restores_exclusion_under_drift() {
        let (inst, sample, schedule) = setup();
        let gradient = LcGradient::default();
        let method = Deconvolver::Weighted { lambda: 1e-6 };
        let run = |step_tol: usize| {
            let mut rng = ChaCha8Rng::seed_from_u64(2);
            run_series(
                &inst,
                &sample,
                &gradient,
                &schedule,
                &method,
                10,
                6,
                &DdaConfig {
                    top_n: 2,
                    policy: ExclusionPolicy::Fragmented,
                    rt_drift_s: 30.0,
                    exclusion_step_tol: step_tol,
                    ..Default::default()
                },
                3,
                &mut rng,
            )
        };
        let unaligned = run(0);
        let aligned = run(1);
        assert!(
            aligned.cumulative_unique.last() >= unaligned.cumulative_unique.last(),
            "aligned {:?} vs unaligned {:?}",
            aligned.cumulative_unique,
            unaligned.cumulative_unique
        );
        // The unaligned list wastes more events on drifted repeats.
        assert!(aligned.redundant_fraction <= unaligned.redundant_fraction + 1e-9);
    }

    #[test]
    fn cumulative_counts_are_monotone() {
        let (inst, sample, schedule) = setup();
        let gradient = LcGradient::default();
        let method = Deconvolver::SimplexFast;
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let series = run_series(
            &inst,
            &sample,
            &gradient,
            &schedule,
            &method,
            8,
            5,
            &DdaConfig::default(),
            3,
            &mut rng,
        );
        assert_eq!(series.cumulative_unique.len(), 3);
        for w in series.cumulative_unique.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!(series.msms_events > 0);
    }
}
