//! Efficient storage format for acquired/processed IMS-TOF blocks.
//!
//! The companion paper (entry 17, "An efficient data format for mass
//! spectrometry-based proteomics") argues that the community's XML-based
//! exchange formats are a poor fit for large numeric MS datasets and
//! proposes a database-style binary layout with large gains in size and
//! read time. This module reproduces the comparison on our data objects:
//!
//! * **JSON** (the XML-like text baseline) — what `serde_json` produces;
//! * **dense binary** — a fixed header + little-endian `f32` payload;
//! * **sparse binary** — the same header + per-drift-row zero-run-skipping
//!   (IMS-TOF maps are overwhelmingly empty), the analogue of the paper's
//!   indexed column storage.
//!
//! All encoders quantise intensities to `f32` (ADC-count data carries < 24
//! significant bits); the decoders are exact inverses of that quantisation.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use ims_physics::DriftTofMap;
use serde::{Deserialize, Serialize};

/// Magic number of the binary container ("HTIM").
const MAGIC: u32 = 0x4854_494D;
/// Format version.
const VERSION: u16 = 1;

/// A stored acquisition block: the 2-D map plus the metadata needed to
/// interpret it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredBlock {
    /// Frames accumulated.
    pub frames: u64,
    /// Drift-bin width, seconds.
    pub bin_width_s: f64,
    /// m/z axis lower edge, Th.
    pub mz_min: f64,
    /// m/z axis upper edge, Th.
    pub mz_max: f64,
    /// The intensity map.
    pub map: DriftTofMap,
}

/// Encoding error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatError {
    /// Bad magic / truncated / wrong version.
    Corrupt(&'static str),
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormatError::Corrupt(what) => write!(f, "corrupt container: {what}"),
        }
    }
}

impl std::error::Error for FormatError {}

impl StoredBlock {
    /// JSON text encoding (the XML-like baseline of the comparison).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("block serialises")
    }

    /// Parses the JSON encoding.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    fn put_header(&self, buf: &mut BytesMut, kind: u16) {
        buf.put_u32_le(MAGIC);
        buf.put_u16_le(VERSION);
        buf.put_u16_le(kind);
        buf.put_u64_le(self.frames);
        buf.put_f64_le(self.bin_width_s);
        buf.put_f64_le(self.mz_min);
        buf.put_f64_le(self.mz_max);
        buf.put_u32_le(self.map.drift_bins() as u32);
        buf.put_u32_le(self.map.mz_bins() as u32);
    }

    fn read_header(buf: &mut Bytes) -> Result<(u16, Self), FormatError> {
        if buf.remaining() < 48 {
            return Err(FormatError::Corrupt("short header"));
        }
        if buf.get_u32_le() != MAGIC {
            return Err(FormatError::Corrupt("bad magic"));
        }
        if buf.get_u16_le() != VERSION {
            return Err(FormatError::Corrupt("unsupported version"));
        }
        let kind = buf.get_u16_le();
        let frames = buf.get_u64_le();
        let bin_width_s = buf.get_f64_le();
        let mz_min = buf.get_f64_le();
        let mz_max = buf.get_f64_le();
        let drift_bins = buf.get_u32_le() as usize;
        let mz_bins = buf.get_u32_le() as usize;
        Ok((
            kind,
            Self {
                frames,
                bin_width_s,
                mz_min,
                mz_max,
                map: DriftTofMap::zeros(drift_bins, mz_bins),
            },
        ))
    }

    /// Dense binary encoding: header + row-major `f32` payload.
    pub fn to_binary_dense(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(48 + 4 * self.map.data().len());
        self.put_header(&mut buf, 0);
        for &v in self.map.data() {
            buf.put_f32_le(v as f32);
        }
        buf.freeze()
    }

    /// Sparse binary encoding: header + per-drift-row runs of non-zero
    /// values (`u32 start, u32 len, len × f32`), row terminated by a
    /// `u32::MAX` sentinel.
    pub fn to_binary_sparse(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(48 + self.map.data().len() / 4);
        self.put_header(&mut buf, 1);
        for d in 0..self.map.drift_bins() {
            let row = self.map.drift_row(d);
            let mut col = 0usize;
            while col < row.len() {
                if row[col] == 0.0 {
                    col += 1;
                    continue;
                }
                let start = col;
                while col < row.len() && row[col] != 0.0 {
                    col += 1;
                }
                buf.put_u32_le(start as u32);
                buf.put_u32_le((col - start) as u32);
                for &v in &row[start..col] {
                    buf.put_f32_le(v as f32);
                }
            }
            buf.put_u32_le(u32::MAX);
        }
        buf.freeze()
    }

    /// Decodes either binary encoding.
    pub fn from_binary(bytes: Bytes) -> Result<Self, FormatError> {
        let mut buf = bytes;
        let (kind, mut block) = Self::read_header(&mut buf)?;
        let (drift_bins, mz_bins) = (block.map.drift_bins(), block.map.mz_bins());
        match kind {
            0 => {
                if buf.remaining() < 4 * drift_bins * mz_bins {
                    return Err(FormatError::Corrupt("short dense payload"));
                }
                for v in block.map.data_mut().iter_mut() {
                    *v = buf.get_f32_le() as f64;
                }
            }
            1 => {
                for d in 0..drift_bins {
                    loop {
                        if buf.remaining() < 4 {
                            return Err(FormatError::Corrupt("short sparse payload"));
                        }
                        let start = buf.get_u32_le();
                        if start == u32::MAX {
                            break;
                        }
                        if buf.remaining() < 4 {
                            return Err(FormatError::Corrupt("short run header"));
                        }
                        let len = buf.get_u32_le() as usize;
                        let start = start as usize;
                        if start + len > mz_bins || buf.remaining() < 4 * len {
                            return Err(FormatError::Corrupt("run out of bounds"));
                        }
                        let row = block.map.drift_row_mut(d);
                        for slot in row[start..start + len].iter_mut() {
                            *slot = buf.get_f32_le() as f64;
                        }
                    }
                }
            }
            _ => return Err(FormatError::Corrupt("unknown kind")),
        }
        Ok(block)
    }
}

/// Quantises a map to `f32` (what any binary round trip preserves).
pub fn quantise_f32(map: &DriftTofMap) -> DriftTofMap {
    let mut out = map.clone();
    for v in out.data_mut().iter_mut() {
        *v = *v as f32 as f64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_block(fill: f64) -> StoredBlock {
        // Row-major contiguous fill with realistic fractional intensities.
        let (dn, mn) = (40usize, 200usize);
        let mut map = DriftTofMap::zeros(dn, mn);
        let cells = (fill * (dn * mn) as f64) as usize;
        for i in 0..cells {
            map.data_mut()[i] = (i as f64) * 1.618_033 + 0.237_91;
        }
        StoredBlock {
            frames: 42,
            bin_width_s: 3.9e-4,
            mz_min: 200.0,
            mz_max: 2200.0,
            map,
        }
    }

    #[test]
    fn dense_round_trip_exact_at_f32() {
        let block = sample_block(0.2);
        let bytes = block.to_binary_dense();
        let back = StoredBlock::from_binary(bytes).unwrap();
        assert_eq!(back.frames, 42);
        assert_eq!(back.map.data(), quantise_f32(&block.map).data());
        assert_eq!(back.bin_width_s, block.bin_width_s);
    }

    #[test]
    fn sparse_round_trip_exact_at_f32() {
        for fill in [0.0, 0.01, 0.3, 1.0] {
            let block = sample_block(fill);
            let bytes = block.to_binary_sparse();
            let back = StoredBlock::from_binary(bytes).unwrap();
            assert_eq!(
                back.map.data(),
                quantise_f32(&block.map).data(),
                "fill {fill}"
            );
        }
    }

    #[test]
    fn json_round_trip() {
        let block = sample_block(0.05);
        let back = StoredBlock::from_json(&block.to_json()).unwrap();
        assert_eq!(back, block);
    }

    #[test]
    fn binary_beats_text_on_real_valued_data() {
        // Fully populated map of fractional intensities: the text encoding
        // spends ~18 characters per value against 4 binary bytes.
        let block = sample_block(1.0);
        let json = block.to_json().len();
        let dense = block.to_binary_dense().len();
        assert!(dense < json / 3, "dense {dense} vs json {json}");
    }

    #[test]
    fn sparse_is_much_smaller_for_sparse_maps() {
        let block = sample_block(0.02);
        let dense = block.to_binary_dense().len();
        let sparse = block.to_binary_sparse().len();
        assert!(sparse < dense / 10, "sparse {sparse} vs dense {dense}");
    }

    #[test]
    fn dense_is_smaller_for_full_maps() {
        let block = sample_block(1.0);
        let dense = block.to_binary_dense().len();
        let sparse = block.to_binary_sparse().len();
        // Fully dense data: sparse adds run overhead.
        assert!(dense <= sparse);
    }

    #[test]
    fn corrupt_containers_rejected() {
        let block = sample_block(0.1);
        let good = block.to_binary_dense();
        // Truncated.
        let truncated = good.slice(0..good.len() / 2);
        assert!(StoredBlock::from_binary(truncated).is_err());
        // Bad magic.
        let mut bad = BytesMut::from(&good[..]);
        bad[0] ^= 0xFF;
        assert!(StoredBlock::from_binary(bad.freeze()).is_err());
        // Empty.
        assert!(StoredBlock::from_binary(Bytes::new()).is_err());
    }
}
