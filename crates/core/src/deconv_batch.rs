//! Batched, cache-blocked deconvolution over panels of m/z columns.
//!
//! Every deconvolution method ultimately solves the same circulant system
//! independently for each of the block's m/z columns. The scalar reference
//! path ([`crate::deconvolution::apply_columnwise`]) gathers each column out
//! of the drift-major [`DriftTofMap`] with stride `mz_bins`, runs a solver
//! that allocates fresh buffers per column, and scatters the result back —
//! a cache-hostile access pattern repeated thousands of times per block.
//!
//! [`BatchDeconvolver`] instead processes *panels* of `P` adjacent columns:
//!
//! * a panel is gathered with `drift_bins` contiguous `memcpy`s (row
//!   `d` of the panel is the slice `data[d·mz + c0 .. d·mz + c0 + P]`, no
//!   transpose — the map is already drift-major);
//! * the FWHT butterflies / FFT levels then run as contiguous row-pair
//!   sweeps over the panel, unit-stride and auto-vectorized across the m/z
//!   dimension (`ims_signal::fwht::fwht_panel`, `ims_signal::fft::FftPlan`);
//! * kernel spectra, twiddle factors, chirps and permutation tables are
//!   hoisted out of the column loop into the solver
//!   ([`ims_prs::weighting::CirculantSolver`]), and all working memory
//!   lives in reusable scratch arenas — zero allocations in steady state;
//! * panels are embarrassingly parallel, so
//!   [`BatchDeconvolver::deconvolve_map_parallel`] packs them into
//!   slab-sized jobs — granularity chosen from a measured per-panel cost
//!   model — and runs them on the process-wide work-stealing
//!   [`Scheduler`], the same pool that executes serve-mode session
//!   graphs.
//!
//! Per column, every kernel performs the exact floating-point operations of
//! the scalar path in the same order, so the batched result is
//! **bit-identical** to the per-column reference — the property the
//! proptests in `tests/deconv_batch.rs` pin down.

use crate::acquisition::{AcquiredData, GateSchedule};
use crate::deconvolution::{scale_lambda, Deconvolver};
use crate::pipeline::Scheduler;
use ims_physics::DriftTofMap;
use ims_prs::permutation::TransformScratch;
use ims_prs::weighting::{CirculantInverse, CirculantScratch, CirculantSolver};
use ims_prs::FastMTransform;

/// Default panel width, tuned so the working set of the widest kernel (the
/// Bluestein-padded complex panel of a weighted solve: `2·N` rows × `P`
/// columns × 16 bytes ≈ 512 KiB at `N = 511`) stays inside a typical L2
/// cache while still giving the row sweeps full SIMD width. Re-exported
/// from `ims_signal` so the FPGA block datapath shares the same constant;
/// per-method tuning on top of this baseline lives in
/// [`default_panel_width`].
pub use ims_signal::DEFAULT_PANEL_WIDTH;

/// The per-panel kernel a [`BatchDeconvolver`] applies.
#[derive(Debug, Clone)]
enum PanelKernel {
    /// Signal averaging: the accumulated block already is the answer.
    Identity,
    /// Fast Hadamard (simplex) inverse of the design sequence.
    Simplex(FastMTransform),
    /// Exact or Tikhonov-weighted Fourier inverse of a measured kernel.
    Circulant(CirculantSolver),
}

impl PanelKernel {
    /// Method label used in metric names and trace categories.
    fn name(&self) -> &'static str {
        match self {
            PanelKernel::Identity => "identity",
            PanelKernel::Simplex(_) => "simplex-fwht",
            PanelKernel::Circulant(_) => "circulant",
        }
    }
}

/// Reusable per-worker scratch for the batch engine. One instance per
/// thread is enough; it grows to the largest panel shape seen and is then
/// reused without further allocation.
#[derive(Debug, Clone, Default)]
pub struct PanelScratch {
    /// The gathered `drift_bins × width` panel (row-major).
    panel: Vec<f64>,
    transform: TransformScratch,
    circulant: CirculantScratch,
}

/// Batched deconvolution engine: one precomputed kernel applied to panels
/// of m/z columns.
#[derive(Debug, Clone)]
pub struct BatchDeconvolver {
    kernel: PanelKernel,
    panel_width: usize,
    /// Per-method panel-latency histogram in the global registry
    /// (`deconv.panel_ns.<method>`). A `&'static` registry handle, so
    /// cloning the engine shares it.
    panel_hist: &'static ims_obs::Histogram,
}

/// The registry histogram collecting panel latencies for `kernel`.
fn panel_histogram(kernel: &PanelKernel) -> &'static ims_obs::Histogram {
    ims_obs::metrics::histogram(&format!("deconv.panel_ns.{}", kernel.name()))
}

impl BatchDeconvolver {
    /// Builds the engine for a [`Deconvolver`] method, mirroring
    /// [`Deconvolver::column_solver`] (same kernels, same panics).
    ///
    /// # Panics
    /// Panics if the method cannot be applied to the schedule (e.g.
    /// [`Deconvolver::SimplexFast`] on an oversampled schedule, or
    /// [`Deconvolver::Exact`] on a singular kernel).
    pub fn new(method: &Deconvolver, schedule: &GateSchedule, data: &AcquiredData) -> Self {
        let kernel = match method {
            Deconvolver::Identity => PanelKernel::Identity,
            Deconvolver::SimplexFast => {
                let seq = match schedule {
                    GateSchedule::Multiplexed { seq } => seq,
                    other => panic!(
                        "SimplexFast requires a non-oversampled multiplexed schedule, got {}",
                        other.name()
                    ),
                };
                PanelKernel::Simplex(FastMTransform::new(seq))
            }
            Deconvolver::Exact => PanelKernel::Circulant(
                CirculantInverse::exact(&data.effective_kernel, 1e-9)
                    .expect("effective kernel is singular; use Weighted instead")
                    .solver(),
            ),
            Deconvolver::Weighted { lambda } => {
                let inv = CirculantInverse::weighted(
                    &data.effective_kernel,
                    scale_lambda(*lambda, &data.effective_kernel),
                );
                PanelKernel::Circulant(inv.solver())
            }
            Deconvolver::WeightedIdeal { lambda } => {
                let bits: Vec<f64> = data
                    .schedule_bits
                    .iter()
                    .map(|&b| if b { 1.0 } else { 0.0 })
                    .collect();
                let inv = CirculantInverse::weighted(&bits, scale_lambda(*lambda, &bits));
                PanelKernel::Circulant(inv.solver())
            }
        };
        Self {
            panel_hist: panel_histogram(&kernel),
            kernel,
            panel_width: default_panel_width(method),
        }
    }

    /// Engine around an explicit (e.g. calibration-estimated) circulant
    /// inverse — the batch form of [`CirculantInverse::apply`].
    pub fn from_circulant(inverse: &CirculantInverse) -> Self {
        let kernel = PanelKernel::Circulant(inverse.solver());
        Self {
            panel_hist: panel_histogram(&kernel),
            kernel,
            panel_width: DEFAULT_PANEL_WIDTH,
        }
    }

    /// Engine around a prebuilt fast m-sequence transform (the simplex
    /// inverse for the convolution forward model).
    pub fn from_transform(transform: FastMTransform) -> Self {
        let kernel = PanelKernel::Simplex(transform);
        Self {
            panel_hist: panel_histogram(&kernel),
            kernel,
            panel_width: DEFAULT_PANEL_WIDTH,
        }
    }

    /// Sets the panel width (columns per panel). Widths are clamped to at
    /// least 1; the last panel of a block is narrower when `mz_bins` is not
    /// a multiple of the width.
    pub fn with_panel_width(mut self, width: usize) -> Self {
        self.panel_width = width.max(1);
        self
    }

    /// The configured panel width.
    pub fn panel_width(&self) -> usize {
        self.panel_width
    }

    /// The drift-bin count the kernel expects, if it constrains one.
    fn expected_rows(&self) -> Option<usize> {
        match &self.kernel {
            PanelKernel::Identity => None,
            PanelKernel::Simplex(t) => Some(t.len()),
            PanelKernel::Circulant(s) => Some(s.len()),
        }
    }

    fn check_shape(&self, drift_bins: usize) {
        if let Some(rows) = self.expected_rows() {
            assert_eq!(
                rows, drift_bins,
                "kernel length {rows} does not match {drift_bins} drift bins"
            );
        }
    }

    /// Runs the kernel on one gathered panel in place, recording one span
    /// (category = method name) and one latency sample per panel.
    fn solve_panel(
        &self,
        panel: &mut [f64],
        width: usize,
        transform: &mut TransformScratch,
        circulant: &mut CirculantScratch,
    ) {
        let _sp = ims_obs::span_cat(self.kernel.name(), "panel");
        let start = std::time::Instant::now();
        match &self.kernel {
            PanelKernel::Identity => {}
            PanelKernel::Simplex(t) => t.deconvolve_convolution_panel(panel, width, transform),
            PanelKernel::Circulant(s) => s.solve_panel(panel, width, circulant),
        }
        self.panel_hist.record_duration(start.elapsed());
    }

    /// Deconvolves every m/z column of a drift-major map, panel by panel,
    /// on the calling thread.
    ///
    /// # Panics
    /// Panics if the map's drift-bin count differs from the kernel length.
    pub fn deconvolve_map(&self, map: &DriftTofMap) -> DriftTofMap {
        let mut out = map.clone();
        let mut scratch = PanelScratch::default();
        self.deconvolve_in_place(&mut out, &mut scratch);
        out
    }

    /// In-place, allocation-free (given a warmed `scratch`) form of
    /// [`BatchDeconvolver::deconvolve_map`].
    pub fn deconvolve_in_place(&self, map: &mut DriftTofMap, scratch: &mut PanelScratch) {
        let drift = map.drift_bins();
        let mz = map.mz_bins();
        self.check_shape(drift);
        if matches!(self.kernel, PanelKernel::Identity) {
            return;
        }
        let data = map.data_mut();
        let PanelScratch {
            panel,
            transform,
            circulant,
        } = scratch;
        let mut c0 = 0;
        while c0 < mz {
            let width = self.panel_width.min(mz - c0);
            gather_panel(data, mz, drift, c0, width, panel);
            self.solve_panel(panel, width, transform, circulant);
            scatter_panel(panel, data, mz, drift, c0, width);
            c0 += width;
        }
    }

    /// Like [`BatchDeconvolver::deconvolve_map`], but distributes panels
    /// over the process-wide work-stealing [`Scheduler`] — the same pool
    /// that runs serve-mode session graphs, so batch deconvolution and
    /// serving share one set of workers instead of fighting over cores.
    ///
    /// # Panics
    /// Panics if the map's drift-bin count differs from the kernel length.
    pub fn deconvolve_map_parallel(&self, map: &DriftTofMap) -> DriftTofMap {
        self.deconvolve_map_scheduled(map, Scheduler::global())
    }

    /// [`BatchDeconvolver::deconvolve_map_parallel`] on an explicit pool.
    ///
    /// The effective parallelism is `sched` workers plus the calling
    /// thread (which participates in draining the batch), clamped to the
    /// machine's [`std::thread::available_parallelism`] — asking for more
    /// threads than cores only adds scheduling noise, never throughput,
    /// and the clamp is what keeps measured throughput monotone in the
    /// requested thread count. At one effective thread this delegates to
    /// the in-place serial path: same panel decomposition, same bits,
    /// none of the fan-out costs (zeroed output block, per-task slabs,
    /// result collection).
    ///
    /// # Panics
    /// Panics if the map's drift-bin count differs from the kernel length.
    pub fn deconvolve_map_scheduled(&self, map: &DriftTofMap, sched: &Scheduler) -> DriftTofMap {
        let executors = (sched.threads() + 1).min(machine_threads());
        self.deconvolve_map_executors(map, sched, executors)
    }

    /// Explicit-executor form of
    /// [`BatchDeconvolver::deconvolve_map_scheduled`]: `executors` sets
    /// task granularity and the serial-delegation cutoff, while actual
    /// concurrency stays whatever the pool provides. Exposed so tests can
    /// force the slab fan-out on single-core machines, where the public
    /// entry points would (correctly) delegate to the serial path.
    #[doc(hidden)]
    pub fn deconvolve_map_executors(
        &self,
        map: &DriftTofMap,
        sched: &Scheduler,
        executors: usize,
    ) -> DriftTofMap {
        let drift = map.drift_bins();
        let mz = map.mz_bins();
        self.check_shape(drift);
        if matches!(self.kernel, PanelKernel::Identity) {
            return map.clone();
        }
        let panels = mz.div_ceil(self.panel_width);
        if executors <= 1 || panels <= 1 {
            return self.deconvolve_map(map);
        }
        let data = map.data();
        // Task granularity is a contiguous *run* of panels sized by the
        // cost model (see `panels_per_task`) — panel-per-task spends more
        // on per-task allocation and result collection than a cheap
        // kernel (simplex-fast) spends solving. Each task gathers its
        // panels back to back into one slab; a panel stays contiguous
        // inside it (row stride = its own width), so the kernels solve in
        // place with zero per-panel allocation and the panel
        // decomposition — hence the bit pattern — is identical to the
        // serial path.
        let per_task = self.panels_per_task(drift, executors, panels);
        let tasks = panels.div_ceil(per_task);
        let ranges: Vec<(usize, usize)> = (0..tasks)
            .map(|t| {
                let lo = (t * per_task * self.panel_width).min(mz);
                let hi = ((t + 1) * per_task * self.panel_width).min(mz);
                (lo, hi)
            })
            .filter(|(lo, hi)| lo < hi)
            .collect();
        let mut slabs: Vec<Vec<f64>> = vec![Vec::new(); ranges.len()];
        // Telemetry on the cost model's output: the slab-size (panels per
        // task) distribution shows whether `panels_per_task` is producing
        // slabs big enough to amortize fan-out but small enough to spread.
        let slab_hist = ims_obs::static_histogram!("deconv.slab_panels");
        for &(lo, hi) in &ranges {
            slab_hist.record((hi - lo).div_ceil(self.panel_width) as u64);
        }
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = ranges
            .iter()
            .zip(slabs.iter_mut())
            .map(|(&(lo, hi), slab)| {
                Box::new(move || {
                    let mut scratch = PanelScratch::default();
                    slab.reserve(drift * (hi - lo));
                    let mut c0 = lo;
                    while c0 < hi {
                        let width = self.panel_width.min(hi - c0);
                        let off = slab.len();
                        for d in 0..drift {
                            slab.extend_from_slice(&data[d * mz + c0..d * mz + c0 + width]);
                        }
                        self.solve_panel(
                            &mut slab[off..],
                            width,
                            &mut scratch.transform,
                            &mut scratch.circulant,
                        );
                        c0 += width;
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        let tag = ims_obs::prof::intern_tag("-", "deconvolve", self.kernel.name());
        sched.run_batch_tagged(jobs, tag);
        let mut out = DriftTofMap::zeros(drift, mz);
        let out_data = out.data_mut();
        for (&(lo, _hi), slab) in ranges.iter().zip(slabs.iter()) {
            let mut off = 0;
            let mut c0 = lo;
            while off < slab.len() {
                let width = self.panel_width.min(mz - c0);
                scatter_panel(
                    &slab[off..off + drift * width],
                    out_data,
                    mz,
                    drift,
                    c0,
                    width,
                );
                c0 += width;
                off += drift * width;
            }
        }
        out
    }

    /// Deconvolves a mostly-empty map by solving only its *occupied* m/z
    /// columns and splatting a once-computed zero-column response into
    /// the rest.
    ///
    /// Falls back to the dense serial path when the fraction of occupied
    /// columns is at or above
    /// [`ims_fpga::SPARSE_OCCUPANCY_THRESHOLD`] — above that the
    /// column compaction costs more than the zeros it skips. A column
    /// counts as empty only when every cell is bit-pattern `+0.0`
    /// (`-0.0` or denormals make it occupied), every occupied column
    /// runs the exact per-column kernel sequence of the dense engine,
    /// and the zero response *is* the kernel's exact output for a zero
    /// column — so the result is **bit-identical** to
    /// [`BatchDeconvolver::deconvolve_map`] at every occupancy.
    ///
    /// # Panics
    /// Panics if the map's drift-bin count differs from the kernel length.
    pub fn deconvolve_map_sparse(&self, map: &DriftTofMap) -> DriftTofMap {
        let drift = map.drift_bins();
        let mz = map.mz_bins();
        self.check_shape(drift);
        if matches!(self.kernel, PanelKernel::Identity) {
            return map.clone();
        }
        let data = map.data();
        let occ = occupied_columns(map);
        let cols: Vec<usize> = (0..mz).filter(|&c| occ[c]).collect();
        if cols.len() as f64 >= ims_fpga::SPARSE_OCCUPANCY_THRESHOLD * mz as f64 {
            return self.deconvolve_map(map);
        }
        ims_obs::static_counter!("deconv.sparse_blocks").incr();
        ims_obs::static_counter!("deconv.sparse_columns_skipped").add((mz - cols.len()) as u64);
        let mut scratch = PanelScratch::default();
        // The response every empty column shares: one zero column through
        // the ordinary kernel (width 1 — per-column bits are width-
        // independent).
        let mut zero_response = vec![0.0f64; drift];
        self.solve_panel(
            &mut zero_response,
            1,
            &mut scratch.transform,
            &mut scratch.circulant,
        );
        let mut out = DriftTofMap::zeros(drift, mz);
        let out_data = out.data_mut();
        for (d, &r) in zero_response.iter().enumerate() {
            out_data[d * mz..(d + 1) * mz].fill(r);
        }
        // Gather occupied columns into compact panels, solve, scatter
        // each column back to its original position.
        let mut panel: Vec<f64> = Vec::new();
        let mut c0 = 0;
        while c0 < cols.len() {
            let width = self.panel_width.min(cols.len() - c0);
            panel.clear();
            panel.reserve(drift * width);
            for d in 0..drift {
                panel.extend(cols[c0..c0 + width].iter().map(|&c| data[d * mz + c]));
            }
            self.solve_panel(
                &mut panel,
                width,
                &mut scratch.transform,
                &mut scratch.circulant,
            );
            for d in 0..drift {
                for (i, &c) in cols[c0..c0 + width].iter().enumerate() {
                    out_data[d * mz + c] = panel[d * width + i];
                }
            }
            c0 += width;
        }
        out
    }

    /// Cost of one `drift × panel_width` panel in nanoseconds: the live
    /// mean of this method's `deconv.panel_ns.<method>` histogram once it
    /// has warmed up, else a static per-cell estimate measured on the
    /// reference block (511 × 1000, panel width 32).
    fn panel_cost_ns(&self, drift: usize) -> u64 {
        /// Samples before the live histogram outranks the static model —
        /// enough to flush one block's cold-start outliers.
        const WARM_SAMPLES: u64 = 16;
        let s = self.panel_hist.summary();
        if s.count >= WARM_SAMPLES {
            return s.mean as u64;
        }
        let per_cell_ns = match &self.kernel {
            PanelKernel::Identity => 0.0,
            // ~6 ns/cell: FWHT butterflies plus the permutation scatter.
            PanelKernel::Simplex(_) => 6.0,
            // ~40 ns/cell: four Bluestein pow-2 FFTs over 2N-padded rows.
            PanelKernel::Circulant(_) => 40.0,
        };
        (per_cell_ns * (drift * self.panel_width) as f64) as u64
    }

    /// Panels per task for the parallel path. Tasks target roughly
    /// [`TARGET_TASK_NS`] of kernel work — long enough that queue traffic
    /// and slab allocation vanish in the noise, short enough that a block
    /// still splits into several tasks per worker for load balance — and
    /// never fall below a couple of panels, nor leave executors idle when
    /// there are panels to go around.
    fn panels_per_task(&self, drift: usize, executors: usize, panels: usize) -> usize {
        /// Target per-task kernel time: ~2 ms is ≥10³ × the per-task
        /// overhead (one slab allocation + one queue round-trip).
        const TARGET_TASK_NS: u64 = 2_000_000;
        /// Floor: a task is never a lone panel unless the block has one.
        const MIN_PANELS_PER_TASK: usize = 2;
        let cost = self.panel_cost_ns(drift).max(1);
        let by_cost = usize::try_from(TARGET_TASK_NS / cost)
            .unwrap_or(usize::MAX)
            .max(MIN_PANELS_PER_TASK);
        by_cost.min(panels.div_ceil(executors)).max(1)
    }
}

/// Marks each m/z column of a map holding at least one cell whose bit
/// pattern is not `+0.0` — the float engine's occupancy test (strict on
/// purpose: `-0.0` can produce sign-different outputs through the kernel,
/// so only exact `+0.0` columns may share the cached zero response).
pub fn occupied_columns(map: &DriftTofMap) -> Vec<bool> {
    let (drift, mz) = (map.drift_bins(), map.mz_bins());
    let data = map.data();
    let mut occ = vec![false; mz];
    for d in 0..drift {
        for (o, &v) in occ.iter_mut().zip(&data[d * mz..(d + 1) * mz]) {
            *o |= v.to_bits() != 0;
        }
    }
    occ
}

/// The machine's thread budget (`available_parallelism`, 1 if unknown).
fn machine_threads() -> usize {
    std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1)
}

/// The measured-best panel width for a deconvolution method. Every float
/// method currently lands on [`DEFAULT_PANEL_WIDTH`]: the widest working
/// set (the weighted solve's Bluestein-padded complex panel) fits L2 at 32
/// columns and degrades beyond it, while the cheaper float kernels gain
/// nothing from going wider. The integer fixed-point path (the FPGA
/// software model, not a [`Deconvolver`] variant) tunes separately to
/// [`ims_signal::FIXED_POINT_PANEL_WIDTH`].
pub fn default_panel_width(method: &Deconvolver) -> usize {
    match method {
        Deconvolver::Identity
        | Deconvolver::SimplexFast
        | Deconvolver::Exact
        | Deconvolver::Weighted { .. }
        | Deconvolver::WeightedIdeal { .. } => DEFAULT_PANEL_WIDTH,
    }
}

/// Copies columns `[c0, c0 + width)` of a drift-major block into a
/// contiguous `drift × width` panel (reusing the destination's capacity).
fn gather_panel(
    data: &[f64],
    mz: usize,
    drift: usize,
    c0: usize,
    width: usize,
    panel: &mut Vec<f64>,
) {
    panel.clear();
    panel.reserve(drift * width);
    for d in 0..drift {
        panel.extend_from_slice(&data[d * mz + c0..d * mz + c0 + width]);
    }
}

/// Writes a solved panel back into columns `[c0, c0 + width)` of the block.
fn scatter_panel(
    panel: &[f64],
    data: &mut [f64],
    mz: usize,
    drift: usize,
    c0: usize,
    width: usize,
) {
    for d in 0..drift {
        data[d * mz + c0..d * mz + c0 + width].copy_from_slice(&panel[d * width..(d + 1) * width]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acquisition::{acquire, AcquireOptions};
    use crate::deconvolution::apply_columnwise;
    use ims_physics::{Instrument, Workload};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn small_block(mz: usize) -> (GateSchedule, AcquiredData) {
        let mut inst = Instrument::with_drift_bins(63);
        inst.tof.n_bins = mz;
        inst.gate = ims_physics::gate::GateModel::with_defect_level(0.2);
        let w = Workload::three_peptide_mix();
        let schedule = GateSchedule::multiplexed(6);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let data = acquire(
            &inst,
            &w,
            &schedule,
            10,
            AcquireOptions::default(),
            &mut rng,
        );
        (schedule, data)
    }

    #[test]
    fn batched_is_bit_identical_to_columnwise_reference() {
        // Non-multiple-of-width mz so the ragged tail panel is exercised.
        let (schedule, data) = small_block(70);
        for method in [
            Deconvolver::Identity,
            Deconvolver::SimplexFast,
            Deconvolver::Exact,
            Deconvolver::Weighted { lambda: 1e-5 },
            Deconvolver::WeightedIdeal { lambda: 1e-4 },
        ] {
            let solver = method.column_solver(&schedule, &data);
            let reference = apply_columnwise(&data.accumulated, |col| solver(col));
            for width in [1usize, 7, 32, 70, 200] {
                let engine =
                    BatchDeconvolver::new(&method, &schedule, &data).with_panel_width(width);
                let batched = engine.deconvolve_map(&data.accumulated);
                let parallel = engine.deconvolve_map_parallel(&data.accumulated);
                for (i, (a, b)) in reference
                    .data()
                    .iter()
                    .zip(batched.data().iter())
                    .enumerate()
                {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "{} width {width} cell {i}: {a} vs {b}",
                        method.name()
                    );
                }
                for (a, b) in batched.data().iter().zip(parallel.data().iter()) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }

    #[test]
    fn sparse_map_is_bit_identical_to_dense() {
        let (schedule, data) = small_block(40);
        // Blank out all but a handful of columns (bitwise +0.0) so the
        // sparse path actually engages.
        let mut map = data.accumulated.clone();
        let (drift, mz) = (map.drift_bins(), map.mz_bins());
        let keep = [3usize, 4, 17, 38];
        {
            let d = map.data_mut();
            for r in 0..drift {
                for c in 0..mz {
                    if !keep.contains(&c) {
                        d[r * mz + c] = 0.0;
                    }
                }
            }
        }
        for method in [
            Deconvolver::SimplexFast,
            Deconvolver::Weighted { lambda: 1e-5 },
        ] {
            let engine = BatchDeconvolver::new(&method, &schedule, &data);
            let dense = engine.deconvolve_map(&map);
            let sparse = engine.deconvolve_map_sparse(&map);
            for (i, (a, b)) in dense.data().iter().zip(sparse.data().iter()).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{} cell {i}: {a} vs {b}",
                    method.name()
                );
            }
        }
        // Above threshold the entry point falls back to the dense path.
        let engine =
            BatchDeconvolver::new(&Deconvolver::Weighted { lambda: 1e-5 }, &schedule, &data);
        let dense = engine.deconvolve_map(&data.accumulated);
        let sparse = engine.deconvolve_map_sparse(&data.accumulated);
        assert_eq!(dense.data(), sparse.data());
    }

    #[test]
    fn scratch_survives_shape_changes() {
        let (schedule, data) = small_block(40);
        let engine =
            BatchDeconvolver::new(&Deconvolver::Weighted { lambda: 1e-5 }, &schedule, &data)
                .with_panel_width(16);
        let mut scratch = PanelScratch::default();
        let mut first = data.accumulated.clone();
        engine.deconvolve_in_place(&mut first, &mut scratch);
        // Reuse the same scratch for a second, identical solve.
        let mut second = data.accumulated.clone();
        engine.deconvolve_in_place(&mut second, &mut scratch);
        assert_eq!(first.data(), second.data());
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn rejects_mismatched_drift_bins() {
        let (schedule, data) = small_block(20);
        let engine = BatchDeconvolver::new(&Deconvolver::SimplexFast, &schedule, &data);
        let wrong = DriftTofMap::zeros(64, 20);
        let _ = engine.deconvolve_map(&wrong);
    }
}
