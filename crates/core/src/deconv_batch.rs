//! Batched, cache-blocked deconvolution over panels of m/z columns.
//!
//! Every deconvolution method ultimately solves the same circulant system
//! independently for each of the block's m/z columns. The scalar reference
//! path ([`crate::deconvolution::apply_columnwise`]) gathers each column out
//! of the drift-major [`DriftTofMap`] with stride `mz_bins`, runs a solver
//! that allocates fresh buffers per column, and scatters the result back —
//! a cache-hostile access pattern repeated thousands of times per block.
//!
//! [`BatchDeconvolver`] instead processes *panels* of `P` adjacent columns:
//!
//! * a panel is gathered with `drift_bins` contiguous `memcpy`s (row
//!   `d` of the panel is the slice `data[d·mz + c0 .. d·mz + c0 + P]`, no
//!   transpose — the map is already drift-major);
//! * the FWHT butterflies / FFT levels then run as contiguous row-pair
//!   sweeps over the panel, unit-stride and auto-vectorized across the m/z
//!   dimension (`ims_signal::fwht::fwht_panel`, `ims_signal::fft::FftPlan`);
//! * kernel spectra, twiddle factors, chirps and permutation tables are
//!   hoisted out of the column loop into the solver
//!   ([`ims_prs::weighting::CirculantSolver`]), and all working memory
//!   lives in reusable scratch arenas — zero allocations in steady state;
//! * panels are embarrassingly parallel, so
//!   [`BatchDeconvolver::deconvolve_map_parallel`] distributes them over
//!   the current rayon pool.
//!
//! Per column, every kernel performs the exact floating-point operations of
//! the scalar path in the same order, so the batched result is
//! **bit-identical** to the per-column reference — the property the
//! proptests in `tests/deconv_batch.rs` pin down.

use crate::acquisition::{AcquiredData, GateSchedule};
use crate::deconvolution::{scale_lambda, Deconvolver};
use ims_physics::DriftTofMap;
use ims_prs::permutation::TransformScratch;
use ims_prs::weighting::{CirculantInverse, CirculantScratch, CirculantSolver};
use ims_prs::FastMTransform;
use rayon::prelude::*;

/// Default panel width, tuned so the working set of the widest kernel (the
/// Bluestein-padded complex panel of a weighted solve: `2·N` rows × `P`
/// columns × 16 bytes ≈ 512 KiB at `N = 511`) stays inside a typical L2
/// cache while still giving the row sweeps full SIMD width.
pub const DEFAULT_PANEL_WIDTH: usize = 32;

/// The per-panel kernel a [`BatchDeconvolver`] applies.
#[derive(Debug, Clone)]
enum PanelKernel {
    /// Signal averaging: the accumulated block already is the answer.
    Identity,
    /// Fast Hadamard (simplex) inverse of the design sequence.
    Simplex(FastMTransform),
    /// Exact or Tikhonov-weighted Fourier inverse of a measured kernel.
    Circulant(CirculantSolver),
}

impl PanelKernel {
    /// Method label used in metric names and trace categories.
    fn name(&self) -> &'static str {
        match self {
            PanelKernel::Identity => "identity",
            PanelKernel::Simplex(_) => "simplex-fwht",
            PanelKernel::Circulant(_) => "circulant",
        }
    }
}

/// Reusable per-worker scratch for the batch engine. One instance per
/// thread is enough; it grows to the largest panel shape seen and is then
/// reused without further allocation.
#[derive(Debug, Clone, Default)]
pub struct PanelScratch {
    /// The gathered `drift_bins × width` panel (row-major).
    panel: Vec<f64>,
    transform: TransformScratch,
    circulant: CirculantScratch,
}

/// Batched deconvolution engine: one precomputed kernel applied to panels
/// of m/z columns.
#[derive(Debug, Clone)]
pub struct BatchDeconvolver {
    kernel: PanelKernel,
    panel_width: usize,
    /// Per-method panel-latency histogram in the global registry
    /// (`deconv.panel_ns.<method>`). A `&'static` registry handle, so
    /// cloning the engine shares it.
    panel_hist: &'static ims_obs::Histogram,
}

/// The registry histogram collecting panel latencies for `kernel`.
fn panel_histogram(kernel: &PanelKernel) -> &'static ims_obs::Histogram {
    ims_obs::metrics::histogram(&format!("deconv.panel_ns.{}", kernel.name()))
}

impl BatchDeconvolver {
    /// Builds the engine for a [`Deconvolver`] method, mirroring
    /// [`Deconvolver::column_solver`] (same kernels, same panics).
    ///
    /// # Panics
    /// Panics if the method cannot be applied to the schedule (e.g.
    /// [`Deconvolver::SimplexFast`] on an oversampled schedule, or
    /// [`Deconvolver::Exact`] on a singular kernel).
    pub fn new(method: &Deconvolver, schedule: &GateSchedule, data: &AcquiredData) -> Self {
        let kernel = match method {
            Deconvolver::Identity => PanelKernel::Identity,
            Deconvolver::SimplexFast => {
                let seq = match schedule {
                    GateSchedule::Multiplexed { seq } => seq,
                    other => panic!(
                        "SimplexFast requires a non-oversampled multiplexed schedule, got {}",
                        other.name()
                    ),
                };
                PanelKernel::Simplex(FastMTransform::new(seq))
            }
            Deconvolver::Exact => PanelKernel::Circulant(
                CirculantInverse::exact(&data.effective_kernel, 1e-9)
                    .expect("effective kernel is singular; use Weighted instead")
                    .solver(),
            ),
            Deconvolver::Weighted { lambda } => {
                let inv = CirculantInverse::weighted(
                    &data.effective_kernel,
                    scale_lambda(*lambda, &data.effective_kernel),
                );
                PanelKernel::Circulant(inv.solver())
            }
            Deconvolver::WeightedIdeal { lambda } => {
                let bits: Vec<f64> = data
                    .schedule_bits
                    .iter()
                    .map(|&b| if b { 1.0 } else { 0.0 })
                    .collect();
                let inv = CirculantInverse::weighted(&bits, scale_lambda(*lambda, &bits));
                PanelKernel::Circulant(inv.solver())
            }
        };
        Self {
            panel_hist: panel_histogram(&kernel),
            kernel,
            panel_width: DEFAULT_PANEL_WIDTH,
        }
    }

    /// Engine around an explicit (e.g. calibration-estimated) circulant
    /// inverse — the batch form of [`CirculantInverse::apply`].
    pub fn from_circulant(inverse: &CirculantInverse) -> Self {
        let kernel = PanelKernel::Circulant(inverse.solver());
        Self {
            panel_hist: panel_histogram(&kernel),
            kernel,
            panel_width: DEFAULT_PANEL_WIDTH,
        }
    }

    /// Engine around a prebuilt fast m-sequence transform (the simplex
    /// inverse for the convolution forward model).
    pub fn from_transform(transform: FastMTransform) -> Self {
        let kernel = PanelKernel::Simplex(transform);
        Self {
            panel_hist: panel_histogram(&kernel),
            kernel,
            panel_width: DEFAULT_PANEL_WIDTH,
        }
    }

    /// Sets the panel width (columns per panel). Widths are clamped to at
    /// least 1; the last panel of a block is narrower when `mz_bins` is not
    /// a multiple of the width.
    pub fn with_panel_width(mut self, width: usize) -> Self {
        self.panel_width = width.max(1);
        self
    }

    /// The configured panel width.
    pub fn panel_width(&self) -> usize {
        self.panel_width
    }

    /// The drift-bin count the kernel expects, if it constrains one.
    fn expected_rows(&self) -> Option<usize> {
        match &self.kernel {
            PanelKernel::Identity => None,
            PanelKernel::Simplex(t) => Some(t.len()),
            PanelKernel::Circulant(s) => Some(s.len()),
        }
    }

    fn check_shape(&self, drift_bins: usize) {
        if let Some(rows) = self.expected_rows() {
            assert_eq!(
                rows, drift_bins,
                "kernel length {rows} does not match {drift_bins} drift bins"
            );
        }
    }

    /// Runs the kernel on one gathered panel in place, recording one span
    /// (category = method name) and one latency sample per panel.
    fn solve_panel(
        &self,
        panel: &mut [f64],
        width: usize,
        transform: &mut TransformScratch,
        circulant: &mut CirculantScratch,
    ) {
        let _sp = ims_obs::span_cat(self.kernel.name(), "panel");
        let start = std::time::Instant::now();
        match &self.kernel {
            PanelKernel::Identity => {}
            PanelKernel::Simplex(t) => t.deconvolve_convolution_panel(panel, width, transform),
            PanelKernel::Circulant(s) => s.solve_panel(panel, width, circulant),
        }
        self.panel_hist.record_duration(start.elapsed());
    }

    /// Deconvolves every m/z column of a drift-major map, panel by panel,
    /// on the calling thread.
    ///
    /// # Panics
    /// Panics if the map's drift-bin count differs from the kernel length.
    pub fn deconvolve_map(&self, map: &DriftTofMap) -> DriftTofMap {
        let mut out = map.clone();
        let mut scratch = PanelScratch::default();
        self.deconvolve_in_place(&mut out, &mut scratch);
        out
    }

    /// In-place, allocation-free (given a warmed `scratch`) form of
    /// [`BatchDeconvolver::deconvolve_map`].
    pub fn deconvolve_in_place(&self, map: &mut DriftTofMap, scratch: &mut PanelScratch) {
        let drift = map.drift_bins();
        let mz = map.mz_bins();
        self.check_shape(drift);
        if matches!(self.kernel, PanelKernel::Identity) {
            return;
        }
        let data = map.data_mut();
        let PanelScratch {
            panel,
            transform,
            circulant,
        } = scratch;
        let mut c0 = 0;
        while c0 < mz {
            let width = self.panel_width.min(mz - c0);
            gather_panel(data, mz, drift, c0, width, panel);
            self.solve_panel(panel, width, transform, circulant);
            scatter_panel(panel, data, mz, drift, c0, width);
            c0 += width;
        }
    }

    /// Like [`BatchDeconvolver::deconvolve_map`], but distributes panels
    /// over the current rayon pool (each worker reuses one scratch arena).
    ///
    /// # Panics
    /// Panics if the map's drift-bin count differs from the kernel length.
    pub fn deconvolve_map_parallel(&self, map: &DriftTofMap) -> DriftTofMap {
        let drift = map.drift_bins();
        let mz = map.mz_bins();
        self.check_shape(drift);
        if matches!(self.kernel, PanelKernel::Identity) {
            return map.clone();
        }
        // A one-thread pool must not pay the fan-out costs (zeroed output
        // block, per-task slabs, result collection): run the in-place
        // serial path — same panel decomposition, same bits.
        if rayon::current_num_threads() <= 1 {
            return self.deconvolve_map(map);
        }
        let data = map.data();
        // Task granularity is a contiguous *run* of panels, a couple per
        // worker — panel-per-task spends more on per-panel allocation and
        // result collection than a cheap kernel (simplex-fast) spends
        // solving. Each task gathers its panels back to back into one
        // slab; a panel stays contiguous inside it (row stride = its own
        // width), so the kernels solve in place with zero per-panel
        // allocation and the panel decomposition — hence the bit pattern —
        // is identical to the serial path.
        let panels = mz.div_ceil(self.panel_width);
        let tasks = (rayon::current_num_threads() * 2).clamp(1, panels);
        let per_task = panels.div_ceil(tasks);
        let ranges: Vec<(usize, usize)> = (0..tasks)
            .map(|t| {
                let lo = (t * per_task * self.panel_width).min(mz);
                let hi = ((t + 1) * per_task * self.panel_width).min(mz);
                (lo, hi)
            })
            .filter(|(lo, hi)| lo < hi)
            .collect();
        let solved: Vec<(usize, Vec<f64>)> = ranges
            .into_par_iter()
            .map_init(PanelScratch::default, |scratch, (lo, hi)| {
                let mut slab = Vec::with_capacity(drift * (hi - lo));
                let mut c0 = lo;
                while c0 < hi {
                    let width = self.panel_width.min(hi - c0);
                    let off = slab.len();
                    for d in 0..drift {
                        slab.extend_from_slice(&data[d * mz + c0..d * mz + c0 + width]);
                    }
                    self.solve_panel(
                        &mut slab[off..],
                        width,
                        &mut scratch.transform,
                        &mut scratch.circulant,
                    );
                    c0 += width;
                }
                (lo, slab)
            })
            .collect();
        let mut out = DriftTofMap::zeros(drift, mz);
        let out_data = out.data_mut();
        for (lo, slab) in &solved {
            let mut off = 0;
            let mut c0 = *lo;
            while off < slab.len() {
                let width = self.panel_width.min(mz - c0);
                scatter_panel(
                    &slab[off..off + drift * width],
                    out_data,
                    mz,
                    drift,
                    c0,
                    width,
                );
                c0 += width;
                off += drift * width;
            }
        }
        out
    }
}

/// Copies columns `[c0, c0 + width)` of a drift-major block into a
/// contiguous `drift × width` panel (reusing the destination's capacity).
fn gather_panel(
    data: &[f64],
    mz: usize,
    drift: usize,
    c0: usize,
    width: usize,
    panel: &mut Vec<f64>,
) {
    panel.clear();
    panel.reserve(drift * width);
    for d in 0..drift {
        panel.extend_from_slice(&data[d * mz + c0..d * mz + c0 + width]);
    }
}

/// Writes a solved panel back into columns `[c0, c0 + width)` of the block.
fn scatter_panel(
    panel: &[f64],
    data: &mut [f64],
    mz: usize,
    drift: usize,
    c0: usize,
    width: usize,
) {
    for d in 0..drift {
        data[d * mz + c0..d * mz + c0 + width].copy_from_slice(&panel[d * width..(d + 1) * width]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acquisition::{acquire, AcquireOptions};
    use crate::deconvolution::apply_columnwise;
    use ims_physics::{Instrument, Workload};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn small_block(mz: usize) -> (GateSchedule, AcquiredData) {
        let mut inst = Instrument::with_drift_bins(63);
        inst.tof.n_bins = mz;
        inst.gate = ims_physics::gate::GateModel::with_defect_level(0.2);
        let w = Workload::three_peptide_mix();
        let schedule = GateSchedule::multiplexed(6);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let data = acquire(
            &inst,
            &w,
            &schedule,
            10,
            AcquireOptions::default(),
            &mut rng,
        );
        (schedule, data)
    }

    #[test]
    fn batched_is_bit_identical_to_columnwise_reference() {
        // Non-multiple-of-width mz so the ragged tail panel is exercised.
        let (schedule, data) = small_block(70);
        for method in [
            Deconvolver::Identity,
            Deconvolver::SimplexFast,
            Deconvolver::Exact,
            Deconvolver::Weighted { lambda: 1e-5 },
            Deconvolver::WeightedIdeal { lambda: 1e-4 },
        ] {
            let solver = method.column_solver(&schedule, &data);
            let reference = apply_columnwise(&data.accumulated, |col| solver(col));
            for width in [1usize, 7, 32, 70, 200] {
                let engine =
                    BatchDeconvolver::new(&method, &schedule, &data).with_panel_width(width);
                let batched = engine.deconvolve_map(&data.accumulated);
                let parallel = engine.deconvolve_map_parallel(&data.accumulated);
                for (i, (a, b)) in reference
                    .data()
                    .iter()
                    .zip(batched.data().iter())
                    .enumerate()
                {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "{} width {width} cell {i}: {a} vs {b}",
                        method.name()
                    );
                }
                for (a, b) in batched.data().iter().zip(parallel.data().iter()) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }

    #[test]
    fn scratch_survives_shape_changes() {
        let (schedule, data) = small_block(40);
        let engine =
            BatchDeconvolver::new(&Deconvolver::Weighted { lambda: 1e-5 }, &schedule, &data)
                .with_panel_width(16);
        let mut scratch = PanelScratch::default();
        let mut first = data.accumulated.clone();
        engine.deconvolve_in_place(&mut first, &mut scratch);
        // Reuse the same scratch for a second, identical solve.
        let mut second = data.accumulated.clone();
        engine.deconvolve_in_place(&mut second, &mut scratch);
        assert_eq!(first.data(), second.data());
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn rejects_mismatched_drift_bins() {
        let (schedule, data) = small_block(20);
        let engine = BatchDeconvolver::new(&Deconvolver::SimplexFast, &schedule, &data);
        let wrong = DriftTofMap::zeros(64, 20);
        let _ = engine.deconvolve_map(&wrong);
    }
}
