//! Multiplexed collision-induced dissociation (IMS-multiplexed CID MS/MS).
//!
//! The companion paper (Clowers, Belov et al., entry 18: "Characterization
//! of an ion mobility-multiplexed CID tandem TOF MS approach") fragments
//! *every* drift-separated precursor simultaneously in a collision cell
//! after the drift tube: fragments keep their precursor's drift time, so
//! one multiplexed acquisition contains the tandem spectra of the whole
//! mixture at once. The software's job — implemented here — is to undo the
//! multiplexing (standard deconvolution), then re-associate fragments with
//! precursors by **matching drift profiles**, and finally identify peptides
//! by comparing assigned fragments with their in-silico b/y ladders, with a
//! reversed-sequence decoy search providing the false-discovery-rate
//! estimate (the paper reports 20 unique peptides from a BSA digest at
//! FDR < 1 %).

use crate::acquisition::{
    acquire_components, AcquireOptions, AcquiredData, GateSchedule, SignalComponent,
};
use ims_physics::fragment::{by_ladder, CidCell};
use ims_physics::peptide::Peptide;
use ims_physics::{DriftTofMap, Instrument};
use ims_signal::stats;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A tandem-MS sample: peptides with molar abundances.
#[derive(Debug, Clone)]
pub struct MsMsSample {
    /// `(peptide, abundance)` pairs.
    pub peptides: Vec<(Peptide, f64)>,
}

impl MsMsSample {
    /// Builds a sample from peptides at equal abundance.
    pub fn uniform(peptides: Vec<Peptide>, abundance: f64) -> Self {
        Self {
            peptides: peptides.into_iter().map(|p| (p, abundance)).collect(),
        }
    }

    /// The precursor-only workload (needed for ESI rate allocation).
    pub fn precursor_workload(&self) -> ims_physics::Workload {
        let mut species = Vec::new();
        for (pep, abundance) in &self.peptides {
            species.extend(pep.to_species(*abundance));
        }
        ims_physics::Workload {
            name: format!("msms-{}-peptides", self.peptides.len()),
            species,
        }
    }
}

/// Runs a multiplexed CID acquisition: precursors drift, the collision cell
/// converts them to fragment populations, and the TOF records everything.
pub fn acquire_msms(
    instrument: &Instrument,
    sample: &MsMsSample,
    cid: &CidCell,
    schedule: &GateSchedule,
    frames: u64,
    options: AcquireOptions,
    rng: &mut impl Rng,
) -> AcquiredData {
    let workload = sample.precursor_workload();
    let rates = instrument.esi.ion_rates(&workload.species);

    // Expand each precursor through the collision cell. The workload's
    // species were generated per peptide in order, so re-walk the same
    // construction to pair species with their peptides.
    let mut components = Vec::new();
    let mut species_iter = workload.species.iter().zip(rates.iter());
    for (pep, abundance) in &sample.peptides {
        let n_states = pep.charge_states().len();
        for _ in 0..n_states {
            let (precursor, &rate) = species_iter.next().expect("workload construction matches");
            debug_assert!(precursor.name.starts_with(&pep.sequence));
            debug_assert!(*abundance >= 0.0);
            for (product, weight) in cid.products(precursor, pep) {
                components.push(SignalComponent {
                    drift_species: precursor.clone(),
                    tof_species: product,
                    rate: rate * weight,
                });
            }
        }
    }
    acquire_components(instrument, &components, schedule, frames, options, rng)
}

/// Configuration of the fragment-assignment / identification search.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MsMsSearch {
    /// Minimum Pearson correlation between fragment and precursor drift
    /// profiles.
    pub min_correlation: f64,
    /// m/z matching tolerance, bins.
    pub mz_tol_bins: usize,
    /// Minimum matched fragments for an identification.
    pub min_fragments: usize,
    /// How many of the strongest in-silico fragments to look for.
    pub top_fragments: usize,
}

impl Default for MsMsSearch {
    fn default() -> Self {
        Self {
            min_correlation: 0.8,
            mz_tol_bins: 1,
            min_fragments: 4,
            top_fragments: 10,
        }
    }
}

/// One peptide-spectrum match.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PeptideMatch {
    /// Peptide sequence.
    pub sequence: String,
    /// Whether this is a decoy (reversed) sequence.
    pub is_decoy: bool,
    /// Number of fragments matched (of `top_fragments` sought).
    pub fragments_matched: usize,
    /// Mean drift-profile correlation of the matched fragments.
    pub mean_correlation: f64,
    /// Precursor drift bin used.
    pub precursor_drift_bin: usize,
}

/// Reverses a peptide's internal residues, keeping the C-terminal residue
/// (the standard tryptic decoy construction — preserves mass and terminal
/// basicity while scrambling the fragment ladder).
pub fn decoy_of(peptide: &Peptide) -> Peptide {
    let seq = peptide.sequence.as_bytes();
    if seq.len() <= 2 {
        return peptide.clone();
    }
    let mut rev: Vec<u8> = seq[..seq.len() - 1].to_vec();
    rev.reverse();
    rev.push(seq[seq.len() - 1]);
    Peptide::new(String::from_utf8(rev).expect("valid residues"))
}

/// Searches a deconvolved multiplexed-CID map for the given peptides (and,
/// if `with_decoys`, their reversed decoys). Returns matches sorted by
/// fragments matched, then correlation.
pub fn search(
    map: &DriftTofMap,
    instrument: &Instrument,
    peptides: &[Peptide],
    cfg: &MsMsSearch,
    with_decoys: bool,
) -> Vec<PeptideMatch> {
    let mut candidates: Vec<(Peptide, bool)> =
        peptides.iter().map(|p| (p.clone(), false)).collect();
    if with_decoys {
        for p in peptides {
            let d = decoy_of(p);
            if d.sequence != p.sequence {
                candidates.push((d, true));
            }
        }
    }

    let mut out = Vec::new();
    for (pep, is_decoy) in candidates {
        if let Some(m) = match_one(map, instrument, &pep, cfg, is_decoy) {
            out.push(m);
        }
    }
    out.sort_by(|a, b| {
        b.fragments_matched.cmp(&a.fragments_matched).then(
            b.mean_correlation
                .partial_cmp(&a.mean_correlation)
                .expect("finite"),
        )
    });
    out
}

/// Extracted drift profile around an m/z bin (±tol).
fn xic(map: &DriftTofMap, mz_bin: usize, tol: usize) -> Vec<f64> {
    let lo = mz_bin.saturating_sub(tol);
    let hi = (mz_bin + tol).min(map.mz_bins() - 1);
    map.drift_profile(lo, hi)
}

fn match_one(
    map: &DriftTofMap,
    instrument: &Instrument,
    pep: &Peptide,
    cfg: &MsMsSearch,
    is_decoy: bool,
) -> Option<PeptideMatch> {
    // Dominant precursor charge state determines the drift profile.
    let (z, _) = pep
        .charge_states()
        .into_iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))?;
    let precursor = ims_physics::IonSpecies::new(
        pep.sequence.clone(),
        pep.monoisotopic_mass(),
        z,
        pep.ccs_a2(z),
        1.0,
    );
    let drift_bin =
        (instrument.tube.drift_time_s(&precursor) / instrument.bin_width_s).round() as usize;
    if drift_bin >= map.drift_bins() {
        return None;
    }
    let precursor_mz_bin = instrument.tof.bin_of(precursor.mz())?;
    let precursor_profile = xic(map, precursor_mz_bin, cfg.mz_tol_bins);

    // Strongest in-silico fragments within the TOF range.
    let mut ladder = by_ladder(pep);
    ladder.sort_by(|a, b| b.intensity.partial_cmp(&a.intensity).expect("finite"));
    let mut matched = 0usize;
    let mut correlations = Vec::new();
    let mut sought = 0usize;
    for frag in ladder {
        if sought >= cfg.top_fragments {
            break;
        }
        let Some(frag_bin) = instrument.tof.bin_of(frag.mz) else {
            continue;
        };
        sought += 1;
        let frag_profile = xic(map, frag_bin, cfg.mz_tol_bins);
        // The fragment must peak near the precursor's drift bin…
        let lo = drift_bin.saturating_sub(2);
        let hi = (drift_bin + 3).min(frag_profile.len());
        let local_max = frag_profile[lo..hi]
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let global_noise = stats::mad_sigma(&frag_profile).max(1e-9);
        let baseline = stats::median(&frag_profile);
        if (local_max - baseline) < 3.0 * global_noise {
            continue;
        }
        // …and its whole drift profile must correlate with the precursor's.
        let r = stats::pearson(&precursor_profile, &frag_profile);
        if r >= cfg.min_correlation {
            matched += 1;
            correlations.push(r);
        }
    }
    if matched < cfg.min_fragments {
        return None;
    }
    Some(PeptideMatch {
        sequence: pep.sequence.clone(),
        is_decoy,
        fragments_matched: matched,
        mean_correlation: stats::mean(&correlations),
        precursor_drift_bin: drift_bin,
    })
}

/// False-discovery rate estimate: `decoys / targets` among the matches.
pub fn fdr(matches: &[PeptideMatch]) -> f64 {
    let targets = matches.iter().filter(|m| !m.is_decoy).count();
    let decoys = matches.len() - targets;
    if targets == 0 {
        if decoys == 0 {
            0.0
        } else {
            1.0
        }
    } else {
        decoys as f64 / targets as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deconvolution::Deconvolver;
    use ims_physics::peptide::reference_peptides;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup(frames: u64) -> (Instrument, MsMsSample, GateSchedule, AcquiredData) {
        let degree = 8;
        let n = (1usize << degree) - 1;
        let mut inst = Instrument::with_drift_bins(n);
        inst.tof.n_bins = 1800;
        inst.tof.mz_min = 100.0;
        let sample = MsMsSample::uniform(reference_peptides(), 1.0);
        let schedule = GateSchedule::multiplexed(degree);
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let data = acquire_msms(
            &inst,
            &sample,
            &CidCell::default(),
            &schedule,
            frames,
            AcquireOptions::default(),
            &mut rng,
        );
        (inst, sample, schedule, data)
    }

    #[test]
    fn msms_acquisition_contains_fragment_mass_channels() {
        let (inst, sample, _, data) = setup(10);
        // A known y ion of bradykinin must receive signal at the
        // bradykinin drift time.
        let bk = &sample.peptides[0].0;
        let ladder = by_ladder(bk);
        let strongest = ladder
            .iter()
            .max_by(|a, b| a.intensity.partial_cmp(&b.intensity).unwrap())
            .unwrap();
        let frag_bin = inst.tof.bin_of(strongest.mz).expect("fragment in range");
        let profile = data
            .truth
            .drift_profile(frag_bin.saturating_sub(1), frag_bin + 1);
        assert!(
            profile.iter().sum::<f64>() > 0.0,
            "no signal in {} channel",
            strongest.label()
        );
    }

    #[test]
    fn fragments_share_precursor_drift_time() {
        let (inst, sample, _, data) = setup(10);
        let bk = &sample.peptides[0].0;
        let z2 = ims_physics::IonSpecies::new("bk2", bk.monoisotopic_mass(), 2, bk.ccs_a2(2), 1.0);
        let expected_bin = (inst.tube.drift_time_s(&z2) / inst.bin_width_s).round() as usize;
        let strongest = by_ladder(bk)
            .into_iter()
            .max_by(|a, b| a.intensity.partial_cmp(&b.intensity).unwrap())
            .unwrap();
        let frag_bin = inst.tof.bin_of(strongest.mz).unwrap();
        let profile = data
            .truth
            .drift_profile(frag_bin.saturating_sub(1), frag_bin + 1);
        let (apex, _) = ims_signal::stats::argmax(&profile).unwrap();
        // The fragment channel contains contributions from several charge
        // states; the apex must sit at one of the precursor drift bins —
        // check the 2+ one dominates or is near.
        assert!(
            apex.abs_diff(expected_bin) <= 3 || profile[expected_bin] > 0.3 * profile[apex],
            "fragment apex {apex} vs precursor {expected_bin}"
        );
    }

    #[test]
    fn search_identifies_peptides_and_controls_fdr() {
        let (inst, sample, schedule, data) = setup(60);
        let map = Deconvolver::Weighted { lambda: 1e-6 }.deconvolve(&schedule, &data);
        let peptides: Vec<Peptide> = sample.peptides.iter().map(|(p, _)| p.clone()).collect();
        let matches = search(&map, &inst, &peptides, &MsMsSearch::default(), true);
        let targets = matches.iter().filter(|m| !m.is_decoy).count();
        assert!(
            targets >= 3,
            "expected ≥3 of 4 peptides identified, got {targets}: {matches:?}"
        );
        assert!(fdr(&matches) < 0.34, "FDR {}", fdr(&matches));
    }

    #[test]
    fn decoy_construction_preserves_mass() {
        for p in reference_peptides() {
            let d = decoy_of(&p);
            assert!((d.monoisotopic_mass() - p.monoisotopic_mass()).abs() < 1e-9);
            assert_eq!(
                d.sequence.as_bytes().last(),
                p.sequence.as_bytes().last(),
                "C-terminal residue preserved"
            );
        }
    }

    #[test]
    fn fdr_edge_cases() {
        assert_eq!(fdr(&[]), 0.0);
        let decoy_only = vec![PeptideMatch {
            sequence: "X".into(),
            is_decoy: true,
            fragments_matched: 5,
            mean_correlation: 0.9,
            precursor_drift_bin: 0,
        }];
        assert_eq!(fdr(&decoy_only), 1.0);
    }
}
