//! Serialisable experiment configuration — every run in EXPERIMENTS.md is
//! reproducible from one of these plus its seed.

use crate::acquisition::{AcquireOptions, GateSchedule};
use ims_physics::gate::GateModel;
use ims_physics::{Instrument, Workload};
use serde::{Deserialize, Serialize};

/// Which analyte mixture to run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// One bradykinin 2+ calibrant.
    SingleCalibrant,
    /// Bradykinin / angiotensin I / fibrinopeptide A.
    ThreePeptideMix,
    /// Tryptic digest of synthetic proteins.
    ComplexDigest {
        /// Digest RNG seed.
        seed: u64,
        /// Number of proteins.
        n_proteins: usize,
        /// Total matrix abundance.
        abundance: f64,
    },
    /// Digest matrix plus spiked reference peptides.
    SpikedDigest {
        /// Digest RNG seed.
        seed: u64,
        /// Number of matrix proteins.
        n_proteins: usize,
        /// Total matrix abundance.
        matrix_abundance: f64,
        /// Spike abundances.
        spikes: Vec<f64>,
    },
}

impl WorkloadSpec {
    /// Materialises the workload.
    pub fn build(&self) -> Workload {
        match self {
            WorkloadSpec::SingleCalibrant => Workload::single_calibrant(),
            WorkloadSpec::ThreePeptideMix => Workload::three_peptide_mix(),
            WorkloadSpec::ComplexDigest {
                seed,
                n_proteins,
                abundance,
            } => Workload::complex_digest(*seed, *n_proteins, *abundance),
            WorkloadSpec::SpikedDigest {
                seed,
                n_proteins,
                matrix_abundance,
                spikes,
            } => Workload::spiked_digest(*seed, *n_proteins, *matrix_abundance, spikes),
        }
    }
}

/// Which gate schedule to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScheduleSpec {
    /// Conventional single-pulse averaging.
    SignalAveraging,
    /// Classic m-sequence multiplexing.
    Multiplexed,
    /// Modified-oversampled multiplexing with the given factor.
    Oversampled {
        /// Oversampling factor.
        factor: usize,
    },
}

/// A complete experiment description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Master RNG seed.
    pub seed: u64,
    /// PRS degree `n` (sequence length `2ⁿ − 1`).
    pub sequence_degree: u32,
    /// Gate schedule.
    pub schedule: ScheduleSpec,
    /// Frames (PRS cycles) accumulated.
    pub frames: u64,
    /// Gate defect level (0 = ideal).
    pub gate_defect: f64,
    /// Use the ion funnel trap.
    pub use_trap: bool,
    /// Chemical background mean per cell per frame.
    pub background_mean: f64,
    /// TOF m/z bins.
    pub mz_bins: usize,
    /// Analyte mixture.
    pub workload: WorkloadSpec,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            seed: 2007,
            sequence_degree: 9,
            schedule: ScheduleSpec::Multiplexed,
            frames: 100,
            gate_defect: 0.1,
            use_trap: true,
            background_mean: 0.02,
            mz_bins: 2000,
            workload: WorkloadSpec::ThreePeptideMix,
        }
    }
}

impl ExperimentConfig {
    /// Fine drift bins implied by degree and schedule.
    pub fn drift_bins(&self) -> usize {
        let n = (1usize << self.sequence_degree) - 1;
        match self.schedule {
            ScheduleSpec::Oversampled { factor } => n * factor,
            _ => n,
        }
    }

    /// Builds the instrument, workload, schedule, and acquisition options.
    pub fn build(&self) -> (Instrument, Workload, GateSchedule, AcquireOptions) {
        let mut inst = Instrument::with_drift_bins(self.drift_bins());
        inst.tof.n_bins = self.mz_bins;
        inst.gate = GateModel::with_defect_level(self.gate_defect);
        let schedule = match self.schedule {
            ScheduleSpec::SignalAveraging => GateSchedule::signal_averaging(self.drift_bins()),
            ScheduleSpec::Multiplexed => GateSchedule::multiplexed(self.sequence_degree),
            ScheduleSpec::Oversampled { factor } => {
                GateSchedule::oversampled(self.sequence_degree, factor)
            }
        };
        let options = AcquireOptions {
            use_trap: self.use_trap,
            background_mean: self.background_mean,
        };
        (inst, self.workload.build(), schedule, options)
    }

    /// JSON serialisation.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("config serialises")
    }

    /// JSON deserialisation.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip() {
        let cfg = ExperimentConfig {
            schedule: ScheduleSpec::Oversampled { factor: 3 },
            workload: WorkloadSpec::SpikedDigest {
                seed: 5,
                n_proteins: 10,
                matrix_abundance: 50.0,
                spikes: vec![0.01, 1.0],
            },
            ..Default::default()
        };
        let json = cfg.to_json();
        let back = ExperimentConfig::from_json(&json).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn drift_bins_track_schedule() {
        let mut cfg = ExperimentConfig {
            sequence_degree: 7,
            ..Default::default()
        };
        assert_eq!(cfg.drift_bins(), 127);
        cfg.schedule = ScheduleSpec::Oversampled { factor: 3 };
        assert_eq!(cfg.drift_bins(), 381);
    }

    #[test]
    fn build_produces_consistent_shapes() {
        let cfg = ExperimentConfig {
            sequence_degree: 6,
            mz_bins: 80,
            ..Default::default()
        };
        let (inst, workload, schedule, _) = cfg.build();
        assert_eq!(inst.drift_bins, 63);
        assert_eq!(inst.tof.n_bins, 80);
        assert_eq!(schedule.len(), 63);
        assert!(!workload.is_empty());
    }

    #[test]
    fn invalid_json_is_rejected() {
        assert!(ExperimentConfig::from_json("{not json").is_err());
    }
}
