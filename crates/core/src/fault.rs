//! Deterministic, seeded fault injection for the hybrid pipeline.
//!
//! The paper's design streams capture data to an FPGA — a setting where
//! DMA bit-flips, dropped frames, stalled producers, and flaky backends
//! are facts of life. This module makes those failure modes *exercisable*
//! and *reproducible*: a [`FaultSpec`] (parsed from a compact CLI string)
//! plus a seed fully determine every injected fault, because each
//! injection decision is a pure hash of `(seed, site, item index)` rather
//! than a draw from shared mutable RNG state. Thread interleaving can
//! therefore never change *what* is injected — a chaotic run is
//! bit-reproducible from `(seed, spec)` on any executor.
//!
//! Injection sites (wired into the pipeline stages):
//!
//! * `source.stall` — the frame producer sleeps before emitting a frame
//!   (cancellable in slices, so the executor's watchdog can break a
//!   "permanent" stall);
//! * `frame.drop` — a frame is silently never emitted;
//! * `dma.bitflip` — payload bits flip in transit across the link stage,
//!   *after* the packet checksum was taken (detected downstream);
//! * `deconv.fail` — the hardware-model deconvolution backend fails on a
//!   block (recovered by falling back to the software engine, or — with
//!   fallback disabled — panicking the stage so the supervised executor's
//!   `catch_unwind` path is exercised);
//! * `shard.kill` — an accumulator shard is marked lost mid-block
//!   (rebuilt from the frame capture log when one is attached, otherwise
//!   its m/z range drains zeroed and the run is Degraded).
//!
//! Every injection increments a `fault.injected.*` metric and emits a
//! trace instant, so chaos shows up in `/metrics` and trace timelines.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// A producer-stall fault: sleep `duration` with probability `rate` per
/// frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StallSpec {
    /// How long the producer sleeps when the fault fires.
    pub duration: Duration,
    /// Per-frame probability in `[0, 1]`.
    pub rate: f64,
}

/// Every known fault site, in the order the CLI documents them. The
/// unknown-site parse error enumerates this list, so adding a site here is
/// the single place the grammar grows.
pub const SITES: &[&str] = &[
    "dma.bitflip",
    "frame.drop",
    "deconv.fail",
    "source.stall",
    "shard.kill",
];

/// A parsed fault specification: per-site rates, all zero by default.
///
/// The compact string form is comma-separated `site=rate` pairs:
///
/// ```text
/// dma.bitflip=1e-5,source.stall=50ms@0.01,frame.drop=1e-4,deconv.fail=0.001
/// ```
///
/// `dma.bitflip` is a per-*bit* probability (each frame flips
/// `rate × payload_bits` bits in expectation); `frame.drop` and
/// `deconv.fail` are per-frame / per-block probabilities; `source.stall`
/// takes a duration (`50ms`, `2s`, `1.5s`) and an optional `@probability`
/// (default 1, i.e. every frame).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSpec {
    /// Per-bit flip probability on the DMA link.
    pub dma_bitflip: f64,
    /// Per-frame drop probability at the source.
    pub frame_drop: f64,
    /// Per-block hardware-backend failure probability at the deconvolve
    /// stage.
    pub deconv_fail: f64,
    /// Producer stall, if any.
    pub source_stall: Option<StallSpec>,
    /// Per-(block, shard) probability that an accumulator shard is marked
    /// lost mid-block (rebuilt from the capture log when one is attached,
    /// otherwise its m/z range drains zeroed).
    pub shard_kill: f64,
}

impl FaultSpec {
    /// Parses the compact CLI form (see the type docs). Unknown sites,
    /// out-of-range rates, and malformed durations are errors.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut spec = FaultSpec::default();
        for part in text.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (site, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault `{part}`: expected site=value"))?;
            match site.trim() {
                "dma.bitflip" => spec.dma_bitflip = parse_rate(site, value)?,
                "frame.drop" => spec.frame_drop = parse_rate(site, value)?,
                "deconv.fail" => spec.deconv_fail = parse_rate(site, value)?,
                "shard.kill" => spec.shard_kill = parse_rate(site, value)?,
                "source.stall" => {
                    let (dur, rate) = match value.split_once('@') {
                        Some((d, r)) => (d, parse_rate(site, r)?),
                        None => (value, 1.0),
                    };
                    spec.source_stall = Some(StallSpec {
                        duration: parse_duration(dur)
                            .ok_or_else(|| format!("fault `{site}`: bad duration `{dur}`"))?,
                        rate,
                    });
                }
                other => {
                    return Err(format!(
                        "unknown fault site `{other}` (use {})",
                        SITES.join(" | ")
                    ))
                }
            }
        }
        Ok(spec)
    }

    /// True when every rate is zero — injection is a no-op and the run
    /// must be bit-identical to an uninjected one.
    pub fn is_zero(&self) -> bool {
        self.dma_bitflip == 0.0
            && self.frame_drop == 0.0
            && self.deconv_fail == 0.0
            && self.shard_kill == 0.0
            && self.source_stall.is_none_or(|s| s.rate == 0.0)
    }

    /// A copy with the source-side sites (`frame.drop`, `source.stall`)
    /// zeroed. Replay feeds frames straight from the capture log — the log
    /// already reflects which frames the original run admitted, so
    /// re-firing source faults would drop them twice. Downstream sites
    /// (`dma.bitflip`, `deconv.fail`, `shard.kill`) are keyed by packet
    /// seq-no / block index and re-fire identically on replay.
    pub fn without_source_sites(&self) -> Self {
        Self {
            frame_drop: 0.0,
            source_stall: None,
            ..self.clone()
        }
    }
}

impl std::fmt::Display for FaultSpec {
    /// Canonical compact form (parseable by [`FaultSpec::parse`]).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut parts: Vec<String> = Vec::new();
        if self.dma_bitflip > 0.0 {
            parts.push(format!("dma.bitflip={}", self.dma_bitflip));
        }
        if self.frame_drop > 0.0 {
            parts.push(format!("frame.drop={}", self.frame_drop));
        }
        if self.deconv_fail > 0.0 {
            parts.push(format!("deconv.fail={}", self.deconv_fail));
        }
        if let Some(s) = self.source_stall {
            parts.push(format!(
                "source.stall={}ms@{}",
                s.duration.as_millis(),
                s.rate
            ));
        }
        if self.shard_kill > 0.0 {
            parts.push(format!("shard.kill={}", self.shard_kill));
        }
        write!(f, "{}", parts.join(","))
    }
}

fn parse_rate(site: &str, value: &str) -> Result<f64, String> {
    let rate: f64 = value
        .trim()
        .parse()
        .map_err(|_| format!("fault `{site}`: bad rate `{value}`"))?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!("fault `{site}`: rate {rate} outside [0, 1]"));
    }
    Ok(rate)
}

/// Parses `50ms` / `2s` / bare seconds (`1.5`) into a `Duration`.
fn parse_duration(text: &str) -> Option<Duration> {
    let t = text.trim();
    let (number, scale) = if let Some(ms) = t.strip_suffix("ms") {
        (ms, 1e-3)
    } else if let Some(s) = t.strip_suffix('s') {
        (s, 1.0)
    } else {
        (t, 1.0)
    };
    let secs: f64 = number.trim().parse().ok()?;
    (secs.is_finite() && secs >= 0.0).then(|| Duration::from_secs_f64(secs * scale))
}

/// Counts of injected faults from one run, folded into the
/// [`PipelineReport`](crate::pipeline::PipelineReport).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCounts {
    /// Payload bits flipped on the link.
    #[serde(default)]
    pub bitflips: u64,
    /// Frames dropped at the source.
    #[serde(default)]
    pub frames_dropped: u64,
    /// Producer stalls taken.
    #[serde(default)]
    pub stalls: u64,
    /// Hardware deconvolution-backend failures.
    #[serde(default)]
    pub deconv_failures: u64,
    /// Accumulator shards marked lost mid-block.
    #[serde(default)]
    pub shard_kills: u64,
}

impl FaultCounts {
    /// Total injected events.
    pub fn total(&self) -> u64 {
        self.bitflips + self.frames_dropped + self.stalls + self.deconv_failures + self.shard_kills
    }

    /// Injected events that degrade the run's verdict on their own. Shard
    /// kills are excluded: a kill that was rebuilt from the capture log is
    /// fully recovered (bit-identical output), so only an *unrecovered*
    /// shard — reported as `shards_lost` — degrades the verdict.
    pub fn degrading(&self) -> u64 {
        self.total() - self.shard_kills
    }
}

/// Shared, thread-safe injection state (counts + cancel flag).
#[derive(Debug, Default)]
struct FaultShared {
    bitflips: AtomicU64,
    frames_dropped: AtomicU64,
    stalls: AtomicU64,
    deconv_failures: AtomicU64,
    shard_kills: AtomicU64,
    /// Set by the executor's watchdog: in-progress injected sleeps bail
    /// out at their next slice so a "permanent" stall still drains.
    cancel: AtomicBool,
    /// The run's flight recorder plus the pre-registered label index of
    /// each fault site; armed once per run by the executor so every
    /// injection leaves a `fault` event in the black box.
    flight: OnceLock<FlightHooks>,
}

/// Fault-site labels registered in a run's flight recorder.
struct FlightHooks {
    rec: ims_obs::FlightRecorder,
    drop: u16,
    stall: u16,
    bitflip: u16,
    deconv: u16,
    shard: u16,
}

impl std::fmt::Debug for FlightHooks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightHooks").finish_non_exhaustive()
    }
}

/// A seeded injector: cheap to clone (clones share counters), safe to
/// consult from every stage thread. All decisions are pure functions of
/// `(seed, site, item index)` — see the module docs.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    seed: u64,
    spec: FaultSpec,
    shared: Arc<FaultShared>,
}

/// Per-site salts keeping decision streams independent.
const SALT_DROP: u64 = 0x9E37_79B9_7F4A_7C15;
const SALT_STALL: u64 = 0xC2B2_AE3D_27D4_EB4F;
const SALT_BITFLIP: u64 = 0x1656_67B1_9E37_79F9;
const SALT_DECONV: u64 = 0x2545_F491_4F6C_DD1D;
const SALT_SESSION: u64 = 0x9E6D_62D0_6F6A_9A9B;
const SALT_SHARD: u64 = 0xA076_1D64_78BD_642F;

/// Derives session `index`'s seed from a serve-level base seed: the same
/// avalanche mix the fault sites use, salted so the per-session stream is
/// independent of every injection stream. Pure in `(base, index)`, so the
/// whole multi-session run is reproducible from one CLI seed — equal
/// `(base, index)` means equal per-session outputs, across processes.
pub fn session_seed(base: u64, index: u64) -> u64 {
    mix(base ^ SALT_SESSION.wrapping_mul(index.wrapping_add(1)))
}

/// SplitMix64-style finalizer: avalanche-mixes one word.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    x ^ (x >> 33)
}

impl FaultInjector {
    /// An injector for `(seed, spec)` — the whole chaotic run is a pure
    /// function of these two values (plus the uninjected pipeline inputs).
    pub fn new(seed: u64, spec: FaultSpec) -> Self {
        Self {
            seed,
            spec,
            shared: Arc::new(FaultShared::default()),
        }
    }

    /// The spec this injector draws from.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Wires this injector into a run's flight recorder: each fault site
    /// registers a label, and every subsequent injection records a
    /// `fault` event keyed by the frame/block it hit — the causal-chain
    /// evidence in black-box dumps. First arming wins (clones share
    /// state); re-arming is a no-op, so an injector reused across runs
    /// keeps reporting into the first run's recorder.
    pub fn arm_flight(&self, rec: &ims_obs::FlightRecorder) {
        let _ = self.shared.flight.set(FlightHooks {
            rec: rec.clone(),
            drop: rec.register("frame.drop"),
            stall: rec.register("source.stall"),
            bitflip: rec.register("dma.bitflip"),
            deconv: rec.register("deconv.fail"),
            shard: rec.register("shard.kill"),
        });
    }

    /// Records one injected frame-site fault against a site label (no-op
    /// unarmed).
    #[inline]
    fn record_fault(&self, site: fn(&FlightHooks) -> u16, item: u64) {
        if let Some(h) = self.shared.flight.get() {
            h.rec.record(site(h), ims_obs::FlightKind::Fault, item);
        }
    }

    /// Records one injected block-site fault (`item` is a block index,
    /// which lives in a different namespace than frame ids).
    #[inline]
    fn record_block_fault(&self, site: fn(&FlightHooks) -> u16, item: u64) {
        if let Some(h) = self.shared.flight.get() {
            h.rec.record(site(h), ims_obs::FlightKind::BlockFault, item);
        }
    }

    /// The `n`-th deterministic uniform in `[0, 1)` for `(site, item)`.
    fn unit(&self, salt: u64, item: u64, n: u64) -> f64 {
        let h = mix(self.seed
            ^ salt
            ^ item.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ n.wrapping_mul(0xD6E8_FEB8_6659_FD93));
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Should frame `frame_no` be dropped at the source? Counts and
    /// traces when it fires.
    pub fn drop_frame(&self, frame_no: u64) -> bool {
        if self.spec.frame_drop <= 0.0 || self.unit(SALT_DROP, frame_no, 0) >= self.spec.frame_drop
        {
            return false;
        }
        self.shared.frames_dropped.fetch_add(1, Relaxed);
        self.record_fault(|h| h.drop, frame_no);
        ims_obs::static_counter!("fault.injected.frame_drop").incr();
        ims_obs::instant("fault", "frame_drop");
        true
    }

    /// The stall to take before emitting frame `frame_no`, if any.
    pub fn stall_duration(&self, frame_no: u64) -> Option<Duration> {
        let stall = self.spec.source_stall?;
        let fires = stall.rate > 0.0 && self.unit(SALT_STALL, frame_no, 0) < stall.rate;
        if fires {
            // Recorded here (not in `stall`) because only this site knows
            // which frame the stall precedes — the causal-chain key.
            self.record_fault(|h| h.stall, frame_no);
        }
        fires.then_some(stall.duration)
    }

    /// Takes an injected stall: sleeps `duration` in small slices,
    /// checking the cancel flag between slices. Returns `false` when the
    /// sleep was cancelled (the watchdog fired) — the caller should stop
    /// producing. Counts and traces the stall either way.
    pub fn stall(&self, duration: Duration) -> bool {
        self.shared.stalls.fetch_add(1, Relaxed);
        ims_obs::static_counter!("fault.injected.stall").incr();
        ims_obs::instant("fault", "stall");
        let slice = Duration::from_millis(5);
        let deadline = std::time::Instant::now() + duration;
        loop {
            if self.cancelled() {
                return false;
            }
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                return true;
            }
            std::thread::sleep(left.min(slice));
        }
    }

    /// Flips payload bits of one in-flight packet (the DMA corruption
    /// site): each frame flips `rate × payload_bits` bits in expectation,
    /// at hash-chosen positions. Returns the number of bits flipped.
    pub fn corrupt_packet(&self, packet: &mut ims_fpga::dma::FramePacket) -> u64 {
        if self.spec.dma_bitflip <= 0.0 {
            return 0;
        }
        let bits = packet.len_bytes() as f64 * 8.0;
        let expected = self.spec.dma_bitflip * bits;
        // Deterministic count: floor(expected) plus a Bernoulli trial on
        // the fraction — O(flips) work, not O(bits).
        let mut flips = expected.floor() as u64;
        if self.unit(SALT_BITFLIP, packet.seq_no, 0) < expected.fract() {
            flips += 1;
        }
        for n in 0..flips {
            let pos = (self.unit(SALT_BITFLIP, packet.seq_no, n + 1) * bits) as usize;
            packet.flip_bit(pos);
            ims_obs::instant("fault", "bitflip");
        }
        if flips > 0 {
            self.shared.bitflips.fetch_add(flips, Relaxed);
            self.record_fault(|h| h.bitflip, packet.seq_no);
            ims_obs::static_counter!("fault.injected.bitflip").add(flips);
        }
        flips
    }

    /// Does the hardware deconvolution backend fail on block
    /// `block_index`? Counts and traces when it fires.
    pub fn deconv_fails(&self, block_index: u64) -> bool {
        if self.spec.deconv_fail <= 0.0
            || self.unit(SALT_DECONV, block_index, 0) >= self.spec.deconv_fail
        {
            return false;
        }
        self.shared.deconv_failures.fetch_add(1, Relaxed);
        self.record_block_fault(|h| h.deconv, block_index);
        ims_obs::static_counter!("fault.injected.deconv_fail").incr();
        ims_obs::instant("fault", "deconv_fail");
        true
    }

    /// Is accumulator shard `shard` killed during block `block_index`?
    /// Pure in `(seed, block, shard)` like every other site, so the same
    /// shards die in the same blocks on any executor, any process, and on
    /// replay. Counts and traces when it fires.
    pub fn shard_kill(&self, block_index: u64, shard: u64) -> bool {
        if self.spec.shard_kill <= 0.0 {
            return false;
        }
        // Fold (block, shard) into one item index with a multiplier large
        // enough that realistic shard counts never collide across blocks.
        let item = block_index
            .wrapping_mul(0x0000_0001_0000_0001)
            .wrapping_add(shard);
        if self.unit(SALT_SHARD, item, 0) >= self.spec.shard_kill {
            return false;
        }
        self.shared.shard_kills.fetch_add(1, Relaxed);
        self.record_block_fault(|h| h.shard, block_index);
        ims_obs::static_counter!("fault.injected.shard_kill").incr();
        ims_obs::instant("fault", "shard_kill");
        true
    }

    /// Cancels in-progress and future injected stalls (the watchdog's
    /// lever for breaking a permanent stall).
    pub fn cancel(&self) {
        self.shared.cancel.store(true, Relaxed);
    }

    /// Has [`cancel`](Self::cancel) been called?
    pub fn cancelled(&self) -> bool {
        self.shared.cancel.load(Relaxed)
    }

    /// Injected-fault counts so far (shared across clones).
    pub fn counts(&self) -> FaultCounts {
        FaultCounts {
            bitflips: self.shared.bitflips.load(Relaxed),
            frames_dropped: self.shared.frames_dropped.load(Relaxed),
            stalls: self.shared.stalls.load(Relaxed),
            deconv_failures: self.shared.deconv_failures.load(Relaxed),
            shard_kills: self.shared.shard_kills.load(Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_seeds_are_stable_and_distinct() {
        // Pinned values: the cross-process reproducibility contract of
        // `htims serve --sessions N --seed B` rests on this derivation.
        assert_eq!(session_seed(7, 0), session_seed(7, 0));
        let seeds: Vec<u64> = (0..64).map(|i| session_seed(7, i)).collect();
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), seeds.len(), "derived seeds collide");
        // Different base seeds shift every session.
        assert!((0..64).all(|i| session_seed(7, i) != session_seed(8, i)));
    }

    #[test]
    fn parse_round_trips_canonical_form() {
        let spec = FaultSpec::parse(
            "dma.bitflip=1e-5,source.stall=50ms@0.01,frame.drop=1e-4,deconv.fail=0.001",
        )
        .unwrap();
        assert_eq!(spec.dma_bitflip, 1e-5);
        assert_eq!(spec.frame_drop, 1e-4);
        assert_eq!(spec.deconv_fail, 0.001);
        let stall = spec.source_stall.unwrap();
        assert_eq!(stall.duration, Duration::from_millis(50));
        assert_eq!(stall.rate, 0.01);
        // Display renders a form parse() accepts and that parses equal.
        let back = FaultSpec::parse(&spec.to_string()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn every_site_round_trips_parse_render_parse() {
        // One representative spec exercising every site in SITES — the
        // grammar's parse→render→parse fixed point. Fails if a new site is
        // added to parse() without a Display arm (or vice versa).
        let text = "dma.bitflip=1e-5,frame.drop=1e-4,deconv.fail=0.001,source.stall=50ms@0.01,\
             shard.kill=0.5";
        let spec = FaultSpec::parse(text).unwrap();
        assert_eq!(spec.shard_kill, 0.5);
        let rendered = spec.to_string();
        for site in SITES {
            assert!(
                rendered.contains(site),
                "rendered form `{rendered}` lost site `{site}`"
            );
        }
        assert_eq!(FaultSpec::parse(&rendered).unwrap(), spec);
        // And per-site singletons round-trip too.
        for single in [
            "dma.bitflip=0.25",
            "frame.drop=0.25",
            "deconv.fail=0.25",
            "source.stall=10ms@0.25",
            "shard.kill=0.25",
        ] {
            let s = FaultSpec::parse(single).unwrap();
            assert_eq!(FaultSpec::parse(&s.to_string()).unwrap(), s, "{single}");
        }
    }

    #[test]
    fn unknown_site_error_enumerates_all_sites() {
        let err = FaultSpec::parse("nope.site=0.5").unwrap_err();
        for site in SITES {
            assert!(err.contains(site), "error `{err}` missing site `{site}`");
        }
    }

    #[test]
    fn without_source_sites_keeps_downstream_sites() {
        let spec = FaultSpec::parse(
            "dma.bitflip=1e-5,frame.drop=0.1,deconv.fail=0.2,source.stall=5ms@0.3,shard.kill=0.4",
        )
        .unwrap();
        let replay = spec.without_source_sites();
        assert_eq!(replay.frame_drop, 0.0);
        assert!(replay.source_stall.is_none());
        assert_eq!(replay.dma_bitflip, 1e-5);
        assert_eq!(replay.deconv_fail, 0.2);
        assert_eq!(replay.shard_kill, 0.4);
    }

    #[test]
    fn shard_kill_decisions_are_deterministic_and_rate_shaped() {
        let spec = FaultSpec::parse("shard.kill=0.25").unwrap();
        let a = FaultInjector::new(42, spec.clone());
        let b = FaultInjector::new(42, spec.clone());
        let kills_a: Vec<bool> = (0..1000)
            .flat_map(|blk| (0..4).map(move |s| (blk, s)))
            .map(|(blk, s)| a.shard_kill(blk, s))
            .collect();
        let kills_b: Vec<bool> = (0..1000)
            .flat_map(|blk| (0..4).map(move |s| (blk, s)))
            .map(|(blk, s)| b.shard_kill(blk, s))
            .collect();
        assert_eq!(kills_a, kills_b, "same (seed, spec) ⇒ same kills");
        let rate = kills_a.iter().filter(|&&k| k).count() as f64 / 4000.0;
        assert!((rate - 0.25).abs() < 0.05, "empirical rate {rate}");
        assert_eq!(
            a.counts().shard_kills,
            kills_a.iter().filter(|&&k| k).count() as u64
        );
        // Kills count toward total() but not degrading().
        assert_eq!(a.counts().degrading(), 0);
        assert!(a.counts().total() > 0);
        // Distinct shards in the same block draw independently.
        let c = FaultInjector::new(7, FaultSpec::parse("shard.kill=0.5").unwrap());
        let per_shard: Vec<Vec<bool>> = (0..4u64)
            .map(|s| (0..256).map(|blk| c.shard_kill(blk, s)).collect())
            .collect();
        assert!(per_shard.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(FaultSpec::parse("dma.bitflip=2").is_err(), "rate > 1");
        assert!(FaultSpec::parse("dma.bitflip=-0.1").is_err(), "rate < 0");
        assert!(FaultSpec::parse("nope.site=0.5").is_err(), "unknown site");
        assert!(FaultSpec::parse("frame.drop").is_err(), "missing value");
        assert!(
            FaultSpec::parse("source.stall=xyz").is_err(),
            "bad duration"
        );
        assert!(FaultSpec::parse("source.stall=10ms@7").is_err(), "bad prob");
    }

    #[test]
    fn empty_and_zero_specs_are_zero() {
        assert!(FaultSpec::parse("").unwrap().is_zero());
        assert!(FaultSpec::default().is_zero());
        let zero = FaultSpec::parse("dma.bitflip=0,frame.drop=0,deconv.fail=0").unwrap();
        assert!(zero.is_zero());
        assert!(!FaultSpec::parse("frame.drop=0.5").unwrap().is_zero());
    }

    #[test]
    fn decisions_are_deterministic_and_rate_shaped() {
        let spec = FaultSpec::parse("frame.drop=0.25").unwrap();
        let a = FaultInjector::new(42, spec.clone());
        let b = FaultInjector::new(42, spec.clone());
        let drops_a: Vec<bool> = (0..4000).map(|i| a.drop_frame(i)).collect();
        let drops_b: Vec<bool> = (0..4000).map(|i| b.drop_frame(i)).collect();
        assert_eq!(drops_a, drops_b, "same (seed, spec) ⇒ same decisions");
        let rate = drops_a.iter().filter(|&&d| d).count() as f64 / 4000.0;
        assert!((rate - 0.25).abs() < 0.05, "empirical rate {rate}");
        // A different seed draws a different stream.
        let c = FaultInjector::new(43, spec);
        let drops_c: Vec<bool> = (0..4000).map(|i| c.drop_frame(i)).collect();
        assert_ne!(drops_a, drops_c);
        assert_eq!(
            a.counts().frames_dropped,
            drops_a.iter().filter(|&&d| d).count() as u64
        );
    }

    #[test]
    fn corrupt_packet_flips_expected_bits_deterministically() {
        let words: Vec<u32> = (0..256).map(|i| i * 7).collect();
        let spec = FaultSpec::parse("dma.bitflip=0.001").unwrap();
        let inj = FaultInjector::new(9, spec);
        let mut p1 = ims_fpga::dma::FramePacket::from_words_checked(5, &words);
        let mut p2 = ims_fpga::dma::FramePacket::from_words_checked(5, &words);
        let f1 = inj.corrupt_packet(&mut p1);
        let f2 = inj.corrupt_packet(&mut p2);
        assert_eq!(f1, f2);
        assert_eq!(p1.payload, p2.payload, "same packet ⇒ same corruption");
        // 256 words × 32 bits × 0.001 ≈ 8 expected flips.
        assert!((4..=16).contains(&f1), "flips {f1}");
        assert!(!p1.verify(), "corruption must break the checksum");
        // Zero-rate injector touches nothing.
        let zero = FaultInjector::new(9, FaultSpec::default());
        let mut p3 = ims_fpga::dma::FramePacket::from_words_checked(5, &words);
        assert_eq!(zero.corrupt_packet(&mut p3), 0);
        assert!(p3.verify());
    }

    #[test]
    fn cancelled_stall_returns_early() {
        let spec = FaultSpec::parse("source.stall=60s@1").unwrap();
        let inj = FaultInjector::new(1, spec);
        assert!(inj.stall_duration(0).is_some());
        let peer = inj.clone();
        let t = std::thread::spawn(move || {
            let started = std::time::Instant::now();
            let completed = peer.stall(Duration::from_secs(60));
            (completed, started.elapsed())
        });
        std::thread::sleep(Duration::from_millis(30));
        inj.cancel();
        let (completed, took) = t.join().unwrap();
        assert!(!completed, "cancelled stall must report cancellation");
        assert!(took < Duration::from_secs(5), "stall did not break early");
        assert_eq!(inj.counts().stalls, 1);
    }
}
