//! Append-only frame capture log: the pipeline's black-box flight data.
//!
//! Every [`FramePacket`] the source stage emits is appended to a
//! schema-versioned, FNV-checksummed binary log, fsync'd in bounded
//! segments. The log serves two consumers:
//!
//! * **shard recovery** — when a `shard.kill` fault marks an accumulator
//!   shard lost mid-block, the accumulate stage re-reads the block's
//!   frames from the log and rebuilds the shard bit-exactly;
//! * **incident replay** — `htims pipeline --replay <dir>` feeds the
//!   logged frames back through a fresh pipeline and reproduces the
//!   original output FNV bit-exactly, cross-process.
//!
//! ## On-disk format
//!
//! A log directory holds numbered segment files `seg-NNNNNN.htcl`. Each
//! segment starts with an 8-byte header — magic `HTCL` plus a
//! little-endian `u32` [`CAPTURE_SCHEMA_VERSION`] — followed by records:
//!
//! ```text
//! u32  payload_len         (bytes)
//! u64  seq_no
//! u8   flags               (bit 0: has_checksum)
//! [u64 checksum]           (present iff bit 0 set)
//! [u8] payload             (payload_len bytes)
//! u64  record_fnv          (FNV-1a 64 over all preceding record bytes)
//! ```
//!
//! All integers little-endian. `origin_ns` is deliberately *not* logged —
//! it is wall-clock metadata excluded from the payload checksum, and
//! replay re-stamps it so end-to-end latency histograms stay meaningful.
//! Segments rotate at a byte threshold and are fsync'd on rotation and on
//! [`CaptureLog::finish`]. Opening for read validates every record's FNV
//! and *physically truncates* a corrupt tail (the torn write of a crashed
//! producer), keeping every intact prefix record.

use ims_fpga::dma::{fnv1a64, FramePacket};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Version stamped into every segment header; bumped on any record-format
/// change so stale logs fail loudly instead of misparsing.
pub const CAPTURE_SCHEMA_VERSION: u32 = 1;

/// Segment-file magic, the first four bytes of every segment.
pub const CAPTURE_MAGIC: &[u8; 4] = b"HTCL";

/// Default segment rotation threshold (bytes of records per segment).
pub const DEFAULT_SEGMENT_BYTES: u64 = 4 << 20;

const HEADER_LEN: u64 = 8;

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("seg-{index:06}.htcl"))
}

#[derive(Debug)]
enum Mode {
    /// Writable: `append` encodes and buffers records, rotating segments.
    Append {
        writer: BufWriter<File>,
        segment: u64,
        written: u64,
        segment_bytes: u64,
    },
    /// Replay handle: `append` is a no-op, reads come from disk.
    ReadOnly,
}

#[derive(Debug)]
struct Inner {
    dir: PathBuf,
    mode: Mode,
}

/// A handle to a capture-log directory; cheap to clone (clones share the
/// writer), safe to append from whichever thread runs the source stage
/// while the accumulate stage reads frames back for a shard rebuild.
#[derive(Debug, Clone)]
pub struct CaptureLog {
    inner: Arc<Mutex<Inner>>,
}

impl CaptureLog {
    /// Creates (or resets) `dir` as a fresh writable log: stale segment
    /// files are removed and segment 0 is opened with its header written.
    pub fn create(dir: &Path) -> std::io::Result<Self> {
        Self::create_with_segment_bytes(dir, DEFAULT_SEGMENT_BYTES)
    }

    /// [`create`](Self::create) with an explicit rotation threshold —
    /// tests use small segments to exercise rotation and tail truncation.
    pub fn create_with_segment_bytes(dir: &Path, segment_bytes: u64) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "htcl") {
                std::fs::remove_file(path)?;
            }
        }
        let writer = open_segment(dir, 0)?;
        Ok(Self {
            inner: Arc::new(Mutex::new(Inner {
                dir: dir.to_path_buf(),
                mode: Mode::Append {
                    writer,
                    segment: 0,
                    written: 0,
                    segment_bytes: segment_bytes.max(1),
                },
            })),
        })
    }

    /// Opens an existing log read-only, validating every segment in
    /// order. A record whose FNV trailer does not match — a torn tail
    /// from a crashed producer — is handled by *physically truncating*
    /// that segment at the last intact record and ignoring any later
    /// segments; every validated prefix record survives.
    pub fn open(dir: &Path) -> std::io::Result<Self> {
        let mut index = 0u64;
        loop {
            let path = segment_path(dir, index);
            if !path.exists() {
                if index == 0 {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::NotFound,
                        format!("no capture segments in {}", dir.display()),
                    ));
                }
                break;
            }
            let truncated = validate_segment(&path)?;
            if truncated {
                break; // later segments postdate the torn write
            }
            index += 1;
        }
        Ok(Self {
            inner: Arc::new(Mutex::new(Inner {
                dir: dir.to_path_buf(),
                mode: Mode::ReadOnly,
            })),
        })
    }

    /// The log directory.
    pub fn dir(&self) -> PathBuf {
        self.inner.lock().unwrap().dir.clone()
    }

    /// Appends one packet (no-op on a read-only handle). Rotation flushes
    /// and fsyncs the finished segment, so at most the live segment's
    /// tail is at risk from a crash — exactly what truncation-on-open
    /// repairs.
    pub fn append(&self, packet: &FramePacket) -> std::io::Result<()> {
        let mut inner = self.inner.lock().unwrap();
        let dir = inner.dir.clone();
        let Mode::Append {
            writer,
            segment,
            written,
            segment_bytes,
        } = &mut inner.mode
        else {
            return Ok(());
        };
        let record = encode_record(packet);
        if *written > 0 && *written + record.len() as u64 > *segment_bytes {
            writer.flush()?;
            writer.get_ref().sync_all()?;
            *segment += 1;
            *writer = open_segment(&dir, *segment)?;
            *written = 0;
        }
        writer.write_all(&record)?;
        *written += record.len() as u64;
        ims_obs::static_counter!("capture.frames_logged").incr();
        ims_obs::static_counter!("capture.bytes_logged").add(record.len() as u64);
        Ok(())
    }

    /// Flushes and fsyncs the live segment (no-op read-only). Call at end
    /// of run so the log survives the process.
    pub fn finish(&self) -> std::io::Result<()> {
        let mut inner = self.inner.lock().unwrap();
        if let Mode::Append { writer, .. } = &mut inner.mode {
            writer.flush()?;
            writer.get_ref().sync_all()?;
        }
        Ok(())
    }

    /// Reads every logged packet, in append order. Works on both handle
    /// modes (a writable handle flushes first, so a mid-run rebuild sees
    /// everything appended so far). `origin_ns` is re-stamped at read
    /// time — it is not logged (see the module docs).
    pub fn read_all(&self) -> std::io::Result<Vec<FramePacket>> {
        let mut inner = self.inner.lock().unwrap();
        if let Mode::Append { writer, .. } = &mut inner.mode {
            writer.flush()?;
        }
        let dir = inner.dir.clone();
        drop(inner);
        let mut out = Vec::new();
        let mut index = 0u64;
        loop {
            let path = segment_path(&dir, index);
            if !path.exists() {
                break;
            }
            read_segment(&path, &mut out)?;
            index += 1;
        }
        Ok(out)
    }

    /// Reads exactly the packets with the given seq-nos, erroring if any
    /// is missing — the shard-rebuild read path, where a partial frame
    /// set would rebuild a *wrong* shard rather than no shard.
    pub fn read_frames(&self, seq_nos: &[u64]) -> std::io::Result<Vec<FramePacket>> {
        let all = self.read_all()?;
        let mut out = Vec::with_capacity(seq_nos.len());
        for &seq in seq_nos {
            match all.iter().find(|p| p.seq_no == seq) {
                Some(p) => out.push(p.clone()),
                None => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::NotFound,
                        format!("frame {seq} not in capture log"),
                    ))
                }
            }
        }
        Ok(out)
    }
}

fn open_segment(dir: &Path, index: u64) -> std::io::Result<BufWriter<File>> {
    let file = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(segment_path(dir, index))?;
    let mut writer = BufWriter::new(file);
    writer.write_all(CAPTURE_MAGIC)?;
    writer.write_all(&CAPTURE_SCHEMA_VERSION.to_le_bytes())?;
    Ok(writer)
}

fn encode_record(packet: &FramePacket) -> Vec<u8> {
    let mut buf = Vec::with_capacity(packet.payload.len() + 32);
    buf.extend_from_slice(&(packet.payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&packet.seq_no.to_le_bytes());
    buf.push(u8::from(packet.checksum.is_some()));
    if let Some(sum) = packet.checksum {
        buf.extend_from_slice(&sum.to_le_bytes());
    }
    buf.extend_from_slice(&packet.payload);
    let fnv = fnv1a64(&buf);
    buf.extend_from_slice(&fnv.to_le_bytes());
    buf
}

/// Parses one record from `bytes[at..]`. Returns `(packet, next_offset)`,
/// or `None` for a short / FNV-mismatched record (a torn tail).
fn decode_record(bytes: &[u8], at: usize) -> Option<(FramePacket, usize)> {
    let rest = &bytes[at..];
    if rest.len() < 13 {
        return None;
    }
    let payload_len = u32::from_le_bytes(rest[0..4].try_into().unwrap()) as usize;
    let seq_no = u64::from_le_bytes(rest[4..12].try_into().unwrap());
    let has_checksum = rest[12] & 1 != 0;
    let mut off = 13;
    let checksum = if has_checksum {
        if rest.len() < off + 8 {
            return None;
        }
        let sum = u64::from_le_bytes(rest[off..off + 8].try_into().unwrap());
        off += 8;
        Some(sum)
    } else {
        None
    };
    if rest.len() < off + payload_len + 8 {
        return None;
    }
    let payload = &rest[off..off + payload_len];
    off += payload_len;
    let stored_fnv = u64::from_le_bytes(rest[off..off + 8].try_into().unwrap());
    if fnv1a64(&rest[..off]) != stored_fnv {
        return None;
    }
    let packet = FramePacket {
        seq_no,
        payload: bytes::Bytes::copy_from_slice(payload),
        checksum,
        origin_ns: ims_obs::trace::now_ns(),
    };
    Some((packet, at + off + 8))
}

fn read_header(bytes: &[u8], path: &Path) -> std::io::Result<()> {
    if bytes.len() < HEADER_LEN as usize || &bytes[0..4] != CAPTURE_MAGIC {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("{}: not a capture segment", path.display()),
        ));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version != CAPTURE_SCHEMA_VERSION {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!(
                "{}: capture schema v{version}, this build reads v{CAPTURE_SCHEMA_VERSION}",
                path.display()
            ),
        ));
    }
    Ok(())
}

/// Validates `path`, truncating a torn tail in place. Returns `true` when
/// truncation happened (later segments must be ignored).
fn validate_segment(path: &Path) -> std::io::Result<bool> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    read_header(&bytes, path)?;
    let mut at = HEADER_LEN as usize;
    while at < bytes.len() {
        match decode_record(&bytes, at) {
            Some((_, next)) => at = next,
            None => {
                let file = OpenOptions::new().write(true).open(path)?;
                file.set_len(at as u64)?;
                file.sync_all()?;
                ims_obs::static_counter!("capture.tail_truncations").incr();
                return Ok(true);
            }
        }
    }
    Ok(false)
}

fn read_segment(path: &Path, out: &mut Vec<FramePacket>) -> std::io::Result<()> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    read_header(&bytes, path)?;
    let mut at = HEADER_LEN as usize;
    while at < bytes.len() {
        match decode_record(&bytes, at) {
            Some((packet, next)) => {
                out.push(packet);
                at = next;
            }
            None => {
                // A torn tail on a handle that skipped open()'s
                // validation (the mid-run rebuild path reads its own
                // live segment): stop at the last intact record.
                break;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("htims_capture_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn packet(seq: u64, checked: bool) -> FramePacket {
        let words: Vec<u32> = (0..16)
            .map(|i| (i as u32).wrapping_mul(seq as u32 + 3))
            .collect();
        if checked {
            FramePacket::from_words_checked(seq, &words)
        } else {
            FramePacket::from_words(seq, &words)
        }
    }

    #[test]
    fn round_trips_packets_across_segments() {
        let dir = temp_dir("roundtrip");
        // Tiny segments force several rotations.
        let log = CaptureLog::create_with_segment_bytes(&dir, 200).unwrap();
        let packets: Vec<FramePacket> = (0..12).map(|i| packet(i, i % 2 == 0)).collect();
        for p in &packets {
            log.append(p).unwrap();
        }
        log.finish().unwrap();
        assert!(
            std::fs::read_dir(&dir)
                .unwrap()
                .filter(|e| e
                    .as_ref()
                    .unwrap()
                    .path()
                    .extension()
                    .is_some_and(|x| x == "htcl"))
                .count()
                > 1,
            "small segment limit must rotate"
        );

        let reader = CaptureLog::open(&dir).unwrap();
        let back = reader.read_all().unwrap();
        assert_eq!(back.len(), packets.len());
        for (a, b) in packets.iter().zip(&back) {
            assert_eq!(a.seq_no, b.seq_no);
            assert_eq!(a.payload, b.payload);
            assert_eq!(a.checksum, b.checksum);
            assert!(b.verify());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_frames_selects_by_seq_and_errors_on_missing() {
        let dir = temp_dir("select");
        let log = CaptureLog::create(&dir).unwrap();
        for i in 0..8 {
            log.append(&packet(i, false)).unwrap();
        }
        let picked = log.read_frames(&[6, 2, 2]).unwrap();
        assert_eq!(
            picked.iter().map(|p| p.seq_no).collect::<Vec<_>>(),
            vec![6, 2, 2]
        );
        assert!(log.read_frames(&[99]).is_err(), "missing seq must error");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_tail_is_truncated_on_open_keeping_prefix() {
        let dir = temp_dir("tail");
        let log = CaptureLog::create(&dir).unwrap();
        for i in 0..5 {
            log.append(&packet(i, true)).unwrap();
        }
        log.finish().unwrap();
        // Simulate a torn write: chop bytes off the live segment's tail.
        let seg = segment_path(&dir, 0);
        let len = std::fs::metadata(&seg).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&seg)
            .unwrap()
            .set_len(len - 7)
            .unwrap();

        let reader = CaptureLog::open(&dir).unwrap();
        let back = reader.read_all().unwrap();
        assert_eq!(back.len(), 4, "intact prefix records survive");
        assert!(back.iter().all(|p| p.verify()));
        // Truncation was physical: re-opening finds a clean log.
        assert!(std::fs::metadata(&seg).unwrap().len() < len - 7);
        let again = CaptureLog::open(&dir).unwrap();
        assert_eq!(again.read_all().unwrap().len(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_record_body_is_detected_by_record_fnv() {
        let dir = temp_dir("flip");
        let log = CaptureLog::create(&dir).unwrap();
        for i in 0..3 {
            log.append(&packet(i, false)).unwrap();
        }
        log.finish().unwrap();
        // Flip one byte inside the *last* record's payload.
        let seg = segment_path(&dir, 0);
        let mut bytes = std::fs::read(&seg).unwrap();
        let n = bytes.len();
        bytes[n - 12] ^= 0xFF;
        std::fs::write(&seg, &bytes).unwrap();

        let back = CaptureLog::open(&dir).unwrap().read_all().unwrap();
        assert_eq!(back.len(), 2, "FNV catches the corrupt record");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_magic_and_version_fail_loudly() {
        let dir = temp_dir("magic");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(segment_path(&dir, 0), b"NOPE0000").unwrap();
        assert!(CaptureLog::open(&dir).is_err());
        let mut hdr = CAPTURE_MAGIC.to_vec();
        hdr.extend_from_slice(&(CAPTURE_SCHEMA_VERSION + 1).to_le_bytes());
        std::fs::write(segment_path(&dir, 0), &hdr).unwrap();
        let err = CaptureLog::open(&dir).unwrap_err().to_string();
        assert!(err.contains("schema"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn writable_handle_reads_back_mid_run() {
        // The shard-rebuild path: read through the same (still-open)
        // writable handle, no finish() yet.
        let dir = temp_dir("midrun");
        let log = CaptureLog::create(&dir).unwrap();
        for i in 0..4 {
            log.append(&packet(i, false)).unwrap();
        }
        let back = log.read_frames(&[0, 3]).unwrap();
        assert_eq!(back[0].seq_no, 0);
        assert_eq!(back[1].seq_no, 3);
        // And appending continues to work afterwards.
        log.append(&packet(4, false)).unwrap();
        assert_eq!(log.read_all().unwrap().len(), 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_only_append_is_a_noop() {
        let dir = temp_dir("readonly");
        let log = CaptureLog::create(&dir).unwrap();
        log.append(&packet(0, false)).unwrap();
        log.finish().unwrap();
        let ro = CaptureLog::open(&dir).unwrap();
        ro.append(&packet(1, false)).unwrap();
        ro.finish().unwrap();
        assert_eq!(ro.read_all().unwrap().len(), 1, "read-only must not grow");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
