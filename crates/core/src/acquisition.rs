//! The acquisition engine: gate schedules, trap-mediated ion release, and
//! the stochastic forward model producing accumulated detector data.
//!
//! Three acquisition modes are modelled, matching the companion papers'
//! comparisons:
//!
//! * **signal averaging** — one gate opening per IMS frame (duty cycle
//!   `1/N`); with the trap enabled the whole frame's beam is accumulated
//!   into a single huge packet, which the trap capacity clips and space
//!   charge broadens — exactly why SA cannot simply "catch up" to
//!   multiplexing by trapping longer;
//! * **classic multiplexed** — m-sequence gating, ~50 % duty cycle;
//! * **oversampled/modified multiplexed** — the PNNL enhancement: gating on
//!   a finer time base with an invertibility-restored sequence.
//!
//! The physics is cyclic and stationary, so the per-frame expectation is a
//! circular convolution of the *effective release kernel* with each
//! species' arrival distribution; the effective kernel differs from the
//! ideal design sequence through gate defects (rise time, depletion,
//! leakage) and gap-dependent trap release — the mismatch the weighted
//! deconvolution is designed to absorb.

use ims_physics::{DriftTofMap, Instrument, Workload};
use ims_prs::{MSequence, OversampledSequence};
use ims_signal::correlate::circular_convolve_fft;
use ims_signal::noise::{gaussian, poisson};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How the ion gate is driven.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum GateSchedule {
    /// One opening per frame at bin 0 (the conventional experiment).
    SignalAveraging {
        /// Number of fine drift bins per frame.
        bins: usize,
    },
    /// Classic Hadamard multiplexing with an m-sequence.
    Multiplexed {
        /// The gating m-sequence.
        seq: MSequence,
    },
    /// Oversampled (optionally modified) multiplexing.
    Oversampled {
        /// The fine-time-base gating sequence.
        oseq: OversampledSequence,
    },
}

impl GateSchedule {
    /// Signal averaging over `bins` fine bins.
    pub fn signal_averaging(bins: usize) -> Self {
        GateSchedule::SignalAveraging { bins }
    }

    /// Classic multiplexing of the given PRS degree.
    pub fn multiplexed(degree: u32) -> Self {
        GateSchedule::Multiplexed {
            seq: MSequence::new(degree),
        }
    }

    /// Modified-oversampled multiplexing of a PRS degree and factor.
    pub fn oversampled(degree: u32, factor: usize) -> Self {
        GateSchedule::Oversampled {
            oseq: OversampledSequence::modified_default(MSequence::new(degree), factor),
        }
    }

    /// Fine-bin gate pattern (one period).
    pub fn bits(&self) -> Vec<bool> {
        match self {
            GateSchedule::SignalAveraging { bins } => {
                let mut b = vec![false; *bins];
                b[0] = true;
                b
            }
            GateSchedule::Multiplexed { seq } => seq.bits().to_vec(),
            GateSchedule::Oversampled { oseq } => oseq.bits().to_vec(),
        }
    }

    /// Number of fine bins per frame.
    pub fn len(&self) -> usize {
        match self {
            GateSchedule::SignalAveraging { bins } => *bins,
            GateSchedule::Multiplexed { seq } => seq.len(),
            GateSchedule::Oversampled { oseq } => oseq.len(),
        }
    }

    /// Never true (all schedules have at least 3 bins).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Short display name for reports.
    pub fn name(&self) -> String {
        match self {
            GateSchedule::SignalAveraging { .. } => "signal-averaging".into(),
            GateSchedule::Multiplexed { seq } => format!("multiplexed-n{}", seq.degree()),
            GateSchedule::Oversampled { oseq } => {
                format!("oversampled-n{}-m{}", oseq.base().degree(), oseq.factor())
            }
        }
    }

    /// The base m-sequence, when multiplexed.
    pub fn base_sequence(&self) -> Option<&MSequence> {
        match self {
            GateSchedule::SignalAveraging { .. } => None,
            GateSchedule::Multiplexed { seq } => Some(seq),
            GateSchedule::Oversampled { oseq } => Some(oseq.base()),
        }
    }

    /// Gate duty cycle.
    pub fn duty_cycle(&self) -> f64 {
        let bits = self.bits();
        bits.iter().filter(|&&b| b).count() as f64 / bits.len() as f64
    }
}

/// Options of an acquisition run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AcquireOptions {
    /// Accumulate the beam in the ion funnel trap between openings.
    pub use_trap: bool,
    /// Mean chemical-background counts per cell per frame.
    pub background_mean: f64,
}

impl Default for AcquireOptions {
    fn default() -> Self {
        Self {
            use_trap: true,
            background_mean: 0.02,
        }
    }
}

/// One physical signal component: ions that drift like `drift_species`
/// (setting the arrival-time distribution) but are mass-analysed as
/// `tof_species` (setting the m/z profile). For ordinary MS acquisition the
/// two are the same ion; in multiplexed CID the drift species is the
/// precursor and the TOF species is a fragment — fragmentation happens
/// *after* the mobility separation, so fragments inherit precursor drift.
#[derive(Debug, Clone)]
pub struct SignalComponent {
    /// Species governing drift behaviour.
    pub drift_species: ims_physics::IonSpecies,
    /// Species governing the TOF (m/z) profile.
    pub tof_species: ims_physics::IonSpecies,
    /// Ion rate delivered to the gate, ions/s.
    pub rate: f64,
}

/// Expands a workload into its (trivial) signal components via the ESI
/// source model.
pub fn workload_components(instrument: &Instrument, workload: &Workload) -> Vec<SignalComponent> {
    let rates = instrument.esi.ion_rates(&workload.species);
    workload
        .species
        .iter()
        .zip(rates.iter())
        .map(|(sp, &rate)| SignalComponent {
            drift_species: sp.clone(),
            tof_species: sp.clone(),
            rate,
        })
        .collect()
}

/// One acquired (accumulated) data block plus everything needed to process
/// and score it.
#[derive(Debug, Clone)]
pub struct AcquiredData {
    /// The design gate pattern.
    pub schedule_bits: Vec<bool>,
    /// Effective release kernel actually driving the data (gate transmission
    /// × relative trap-release weight), in units of "ideal continuous open
    /// bin" = 1.
    pub effective_kernel: Vec<f64>,
    /// ADC sums over all frames (drift-major).
    pub accumulated: DriftTofMap,
    /// Noise-free expectation of `accumulated` (oracle for tests).
    pub expected: DriftTofMap,
    /// The unconvolved per-frame truth: expected ions per (drift, m/z) cell
    /// for one ideal unit gate opening.
    pub truth: DriftTofMap,
    /// Frames (PRS cycles) accumulated.
    pub frames: u64,
    /// Fraction of source ions contributing to the data (duty-cycle ×
    /// trap efficiency).
    pub ion_utilization: f64,
    /// Largest released packet charge (drives space-charge broadening).
    pub packet_charges: f64,
    /// Mean single-ion ADC gain (for converting counts back to ions).
    pub adc_gain: f64,
}

/// Runs an acquisition: `frames` PRS cycles of the given schedule.
///
/// # Panics
/// Panics if the schedule length does not match `instrument.drift_bins`.
pub fn acquire(
    instrument: &Instrument,
    workload: &Workload,
    schedule: &GateSchedule,
    frames: u64,
    options: AcquireOptions,
    rng: &mut impl Rng,
) -> AcquiredData {
    let components = workload_components(instrument, workload);
    acquire_components(instrument, &components, schedule, frames, options, rng)
}

/// Runs an acquisition over explicit signal components (the general entry
/// point; MS/MS acquisition in [`crate::msms`] builds CID-expanded
/// component lists).
///
/// # Panics
/// Panics if the schedule length does not match `instrument.drift_bins`.
pub fn acquire_components(
    instrument: &Instrument,
    components: &[SignalComponent],
    schedule: &GateSchedule,
    frames: u64,
    options: AcquireOptions,
    rng: &mut impl Rng,
) -> AcquiredData {
    let bits = schedule.bits();
    let l = bits.len();
    assert_eq!(
        l, instrument.drift_bins,
        "schedule length {l} != instrument drift bins {}",
        instrument.drift_bins
    );
    let bin_s = instrument.bin_width_s;
    let transmission = instrument.gate.transmission_waveform(&bits);
    let charge_rate: f64 = components
        .iter()
        .map(|c| c.rate * c.drift_species.charge as f64)
        .sum();

    // Collected-time vector τ[k] (seconds of beam folded into fine bin k).
    let mut tau = vec![0.0f64; l];
    let mut packet_charges = 0.0f64;
    if options.use_trap {
        // Release at each opening's first bin; the trap has been filling
        // since the previous opening ended.
        let open_starts: Vec<usize> = (0..l)
            .filter(|&k| bits[k] && !bits[(k + l - 1) % l])
            .collect();
        for (idx, &k) in open_starts.iter().enumerate() {
            // Gap since the previous opening *ended* (cyclically).
            let prev_start = open_starts[(idx + open_starts.len() - 1) % open_starts.len()];
            // Walk forward from the previous start to its last open bin.
            let mut prev_end = prev_start;
            while bits[(prev_end + 1) % l] {
                prev_end = (prev_end + 1) % l;
            }
            let gap_bins = (k + l - ((prev_end + 1) % l)) % l;
            let gap_s = (gap_bins.max(1)) as f64 * bin_s;
            let stored = instrument.trap.stored_charge(charge_rate, gap_s);
            let released = instrument.trap.release_efficiency * stored;
            packet_charges = packet_charges.max(released);
            tau[k] += if charge_rate > 0.0 {
                released / charge_rate
            } else {
                0.0
            };
        }
        // While the gate is open the beam also flows straight through.
        for k in 0..l {
            if bits[k] {
                tau[k] += bin_s;
            }
        }
    } else {
        for k in 0..l {
            if bits[k] {
                tau[k] = bin_s;
            }
        }
        packet_charges = charge_rate * bin_s;
    }

    // Effective kernel: transmission × τ in units of one ideal open bin.
    // Leakage contributes the continuous beam through closed bins.
    let effective_kernel: Vec<f64> = (0..l)
        .map(|k| {
            if bits[k] {
                transmission[k] * tau[k] / bin_s
            } else {
                transmission[k] // leakage × continuous beam (τ = bin_s)
            }
        })
        .collect();

    // Per-frame expectation and truth.
    let mut expected = DriftTofMap::zeros(l, instrument.tof.n_bins);
    let mut truth = DriftTofMap::zeros(l, instrument.tof.n_bins);
    for component in components {
        let rate = component.rate;
        if rate <= 0.0 {
            continue;
        }
        let arrival = instrument.tube.arrival_distribution(
            &component.drift_species,
            packet_charges,
            l,
            bin_s,
        );
        let mz_profile = instrument.tof.species_profile(&component.tof_species);
        let mz_sparse: Vec<(usize, f64)> = mz_profile
            .iter()
            .enumerate()
            .filter(|(_, &v)| v > 1e-12)
            .map(|(i, &v)| (i, v))
            .collect();
        if mz_sparse.is_empty() {
            continue;
        }
        // Ions released from fine bin k per frame for this component.
        let release: Vec<f64> = effective_kernel.iter().map(|&h| h * rate * bin_s).collect();
        let drift_signal = circular_convolve_fft(&release, &arrival);
        expected.add_outer_sparse(&drift_signal, &mz_sparse, 1.0);
        truth.add_outer_sparse(&arrival, &mz_sparse, rate * bin_s);
    }

    let source_ions_per_frame: f64 =
        components.iter().map(|c| c.rate).sum::<f64>() * l as f64 * bin_s;
    let ion_utilization = if source_ions_per_frame > 0.0 {
        expected.total() / source_ions_per_frame
    } else {
        0.0
    };

    // Stochastic sampling of the accumulated block.
    let adc = &instrument.adc;
    let frames_f = frames as f64;
    let mut accumulated = expected.clone();
    for v in accumulated.data_mut().iter_mut() {
        let mean_total = (*v + options.background_mean) * frames_f;
        let n = poisson(rng, mean_total.max(0.0)) as f64;
        // Summed MCP gain statistics + accumulated electronic noise.
        let amplitude = n * adc.gain
            + adc.gain * adc.gain_spread * n.sqrt() * gaussian(rng)
            + adc.noise_sigma * frames_f.sqrt() * gaussian(rng);
        *v = amplitude.clamp(0.0, adc.full_scale * frames_f);
    }

    AcquiredData {
        schedule_bits: bits,
        effective_kernel,
        accumulated,
        expected,
        truth,
        frames,
        ion_utilization,
        packet_charges,
        adc_gain: adc.gain,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn small_instrument(bins: usize) -> Instrument {
        let mut inst = Instrument::with_drift_bins(bins);
        inst.tof.n_bins = 200;
        inst
    }

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(1234)
    }

    #[test]
    fn schedule_shapes() {
        assert_eq!(GateSchedule::signal_averaging(127).len(), 127);
        assert_eq!(GateSchedule::multiplexed(7).len(), 127);
        let o = GateSchedule::oversampled(5, 3);
        assert_eq!(o.len(), 93);
        assert!(o.duty_cycle() > 0.45);
        assert!((GateSchedule::signal_averaging(127).duty_cycle() - 1.0 / 127.0).abs() < 1e-12);
    }

    #[test]
    fn multiplexed_collects_more_ions_than_sa_continuous() {
        let inst = small_instrument(127);
        let w = Workload::three_peptide_mix();
        let opts = AcquireOptions {
            use_trap: false,
            background_mean: 0.0,
        };
        let mut r = rng();
        let sa = acquire(
            &inst,
            &w,
            &GateSchedule::signal_averaging(127),
            10,
            opts,
            &mut r,
        );
        let mp = acquire(&inst, &w, &GateSchedule::multiplexed(7), 10, opts, &mut r);
        // ~64/1 opening ratio, less gate rise-time losses.
        let gain = mp.expected.total() / sa.expected.total();
        assert!(gain > 30.0, "ion gain {gain}");
        assert!(
            mp.ion_utilization > 0.2,
            "MP utilization {}",
            mp.ion_utilization
        );
        assert!(
            sa.ion_utilization < 0.02,
            "SA utilization {}",
            sa.ion_utilization
        );
    }

    #[test]
    fn trap_raises_utilization_beyond_duty_cycle() {
        let inst = small_instrument(127);
        let w = Workload::three_peptide_mix();
        let mut r = rng();
        let mp_trap = acquire(
            &inst,
            &w,
            &GateSchedule::multiplexed(7),
            5,
            AcquireOptions {
                use_trap: true,
                background_mean: 0.0,
            },
            &mut r,
        );
        // Trap + multiplexing: well above the ~50 % continuous duty cycle
        // (Clowers 2008 / Belov 2008).
        assert!(
            mp_trap.ion_utilization > 0.5,
            "utilization {}",
            mp_trap.ion_utilization
        );
    }

    #[test]
    fn sa_with_trap_builds_huge_space_charge_packets() {
        let inst = small_instrument(127);
        let w = Workload::three_peptide_mix();
        let mut r = rng();
        let opts = AcquireOptions {
            use_trap: true,
            background_mean: 0.0,
        };
        let sa = acquire(
            &inst,
            &w,
            &GateSchedule::signal_averaging(127),
            5,
            opts,
            &mut r,
        );
        let mp = acquire(&inst, &w, &GateSchedule::multiplexed(7), 5, opts, &mut r);
        // SA packs the whole frame into one packet; MP spreads it over ~64.
        assert!(
            sa.packet_charges > 10.0 * mp.packet_charges,
            "SA {} vs MP {}",
            sa.packet_charges,
            mp.packet_charges
        );
        // And the SA packet is near/above the Coulombic threshold.
        assert!(sa.packet_charges > 1e4);
    }

    #[test]
    fn expected_matches_circulant_model() {
        // With an ideal gate and no trap, the expected drift profile must be
        // exactly the circular convolution of the design bits with truth.
        let mut inst = small_instrument(31);
        inst.gate = ims_physics::gate::GateModel::ideal();
        let w = Workload::single_calibrant();
        let mut r = rng();
        let data = acquire(
            &inst,
            &w,
            &GateSchedule::multiplexed(5),
            1,
            AcquireOptions {
                use_trap: false,
                background_mean: 0.0,
            },
            &mut r,
        );
        let bits_f: Vec<f64> = data
            .schedule_bits
            .iter()
            .map(|&b| if b { 1.0 } else { 0.0 })
            .collect();
        let truth_profile = data.truth.total_ion_drift_profile();
        let expect_profile = data.expected.total_ion_drift_profile();
        let conv = circular_convolve_fft(&bits_f, &truth_profile);
        for (i, (a, b)) in conv.iter().zip(expect_profile.iter()).enumerate() {
            assert!((a - b).abs() < 1e-6 * conv.iter().sum::<f64>(), "bin {i}");
        }
    }

    #[test]
    fn sampling_is_unbiased() {
        let inst = small_instrument(31);
        let w = Workload::single_calibrant();
        let mut r = rng();
        let opts = AcquireOptions {
            use_trap: false,
            background_mean: 0.0,
        };
        let data = acquire(&inst, &w, &GateSchedule::multiplexed(5), 200, opts, &mut r);
        let measured = data.accumulated.total();
        let predicted = data.expected.total() * data.frames as f64 * data.adc_gain;
        assert!(
            (measured - predicted).abs() / predicted < 0.1,
            "measured {measured} vs predicted {predicted}"
        );
    }

    #[test]
    fn effective_kernel_reflects_gate_defects() {
        let mut inst = small_instrument(31);
        inst.gate = ims_physics::gate::GateModel::with_defect_level(0.3);
        let w = Workload::single_calibrant();
        let mut r = rng();
        let data = acquire(
            &inst,
            &w,
            &GateSchedule::multiplexed(5),
            1,
            AcquireOptions {
                use_trap: false,
                background_mean: 0.0,
            },
            &mut r,
        );
        // Kernel deviates from the design bits.
        let mismatch: f64 = data
            .schedule_bits
            .iter()
            .zip(data.effective_kernel.iter())
            .map(|(&b, &h)| (h - if b { 1.0 } else { 0.0 }).abs())
            .sum();
        assert!(mismatch > 0.5, "mismatch {mismatch}");
    }

    #[test]
    #[should_panic(expected = "schedule length")]
    fn shape_mismatch_panics() {
        let inst = small_instrument(127);
        let w = Workload::single_calibrant();
        let mut r = rng();
        let _ = acquire(
            &inst,
            &w,
            &GateSchedule::multiplexed(5),
            1,
            AcquireOptions::default(),
            &mut r,
        );
    }
}
