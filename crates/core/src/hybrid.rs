//! The hybrid pipeline: a CPU producer streams raw frames over a
//! (simulated) DMA link to the FPGA model, which captures, accumulates, and
//! deconvolves; a collector receives the results.
//!
//! This is the paper's architecture in miniature: "the software portion is
//! in charge of streaming data to the FPGA and collecting results". The
//! crucial correctness property — the FPGA component computes *exactly*
//! what the software reference computes — is checkable here because the
//! whole datapath is integer/fixed-point and every frame is reproducible
//! from `(seed, frame_no)`.
//!
//! Every runner in this module is a thin wrapper over the same
//! [`pipeline`](crate::pipeline) stage graph: the hybrid runners use the
//! threaded executor (one thread per stage, bounded channels), the software
//! references use the inline executor — so "hybrid ≡ reference bit for
//! bit" is enforced by construction *and* still pinned by tests.

use crate::acquisition::AcquiredData;
use crate::pipeline::{
    AccumulateStage, BinnerStage, DeconvBackend, DeconvolveStage, FrameSource, LinkStage, Pipeline,
    PipelineReport,
};
use ims_fpga::deconv::DeconvConfig;
use ims_fpga::dma::DmaLink;
use ims_fpga::{AccumulatorCore, MzBinner};
use ims_prs::MSequence;
use ims_signal::noise::{gaussian, poisson};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Deterministic per-frame raw-data generator (the instrument's digitiser
/// output, frame by frame).
#[derive(Debug, Clone)]
pub struct FrameGenerator {
    expected_per_frame: Vec<f64>,
    drift_bins: usize,
    mz_bins: usize,
    gain: f64,
    gain_spread: f64,
    noise_sigma: f64,
    full_scale: f64,
    seed: u64,
}

impl FrameGenerator {
    /// Builds a generator from an acquisition's noise-free per-frame
    /// expectation (see [`AcquiredData::expected`]) and the instrument's
    /// ADC parameters.
    pub fn new(data: &AcquiredData, adc: &ims_physics::detector::AdcDetector, seed: u64) -> Self {
        Self {
            expected_per_frame: data.expected.data().to_vec(),
            drift_bins: data.expected.drift_bins(),
            mz_bins: data.expected.mz_bins(),
            gain: adc.gain,
            gain_spread: adc.gain_spread,
            noise_sigma: adc.noise_sigma,
            full_scale: adc.full_scale,
            seed,
        }
    }

    /// Number of drift bins per frame.
    pub fn drift_bins(&self) -> usize {
        self.drift_bins
    }

    /// Number of m/z bins per frame.
    pub fn mz_bins(&self) -> usize {
        self.mz_bins
    }

    /// Frame payload size, bytes.
    pub fn frame_bytes(&self) -> usize {
        self.drift_bins * self.mz_bins * 4
    }

    /// Generates frame `frame_no` — bit-reproducible for a given generator.
    pub fn frame(&self, frame_no: u64) -> Vec<u32> {
        let mut rng =
            ChaCha8Rng::seed_from_u64(self.seed ^ frame_no.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        self.expected_per_frame
            .iter()
            .map(|&mean| {
                let n = poisson(&mut rng, mean.max(0.0)) as f64;
                let amp = n * self.gain
                    + self.gain * self.gain_spread * n.sqrt() * gaussian(&mut rng)
                    + self.noise_sigma * gaussian(&mut rng);
                amp.clamp(0.0, self.full_scale).round() as u32
            })
            .collect()
    }
}

/// Configuration of a hybrid run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HybridConfig {
    /// Frames to stream.
    pub frames: u64,
    /// Bounded channel depth between producer and FPGA (back-pressure).
    pub channel_depth: usize,
    /// FPGA deconvolution configuration.
    pub deconv: DeconvConfig,
    /// Host-link model used for the simulated-time accounting.
    pub link: DmaLink,
    /// Optional on-chip m/z binning stage in front of the accumulator
    /// (frames arrive at the binner's fine resolution).
    pub binner: Option<MzBinner>,
    /// When set, the accumulate stage attaches a CSR sidecar to blocks
    /// whose occupancy falls below the sparse threshold, and
    /// FWHT-capable deconvolution backends skip the empty columns
    /// (bit-identical output).
    #[serde(default)]
    pub sparse: bool,
    /// m/z-range shards the accumulate stage splits its RAM into (0 and 1
    /// both mean the monolithic single-shard fast path; counts above the
    /// m/z width clamp). Merged output is bit-identical for every count.
    #[serde(default)]
    pub shards: usize,
}

impl Default for HybridConfig {
    fn default() -> Self {
        Self {
            frames: 32,
            channel_depth: 4,
            deconv: DeconvConfig::default(),
            link: DmaLink::rapidarray(),
            binner: None,
            sparse: false,
            shards: 0,
        }
    }
}

/// The accumulator's m/z width under a config (coarse when binning).
fn accumulator_mz_bins(cfg: &HybridConfig, gen: &FrameGenerator) -> usize {
    match &cfg.binner {
        Some(b) => {
            assert_eq!(
                b.fine_bins(),
                gen.mz_bins(),
                "binner input must match the frame resolution"
            );
            b.coarse_bins()
        }
        None => gen.mz_bins(),
    }
}

/// Assembles the standard hybrid stage graph for a config:
/// source → link → \[binner\] → accumulate → deconvolve.
///
/// `frames_per_block` sets the block cadence; `flush_remainder` keeps a
/// trailing partial block (batch semantics) instead of discarding it
/// (streaming semantics). Run the result with
/// [`Pipeline::run_threaded`] or [`Pipeline::run_inline`].
pub fn hybrid_pipeline(
    gen: &FrameGenerator,
    seq: &MSequence,
    cfg: &HybridConfig,
    total_frames: u64,
    frames_per_block: u64,
    flush_remainder: bool,
    backend: DeconvBackend,
) -> Pipeline {
    assert_eq!(
        seq.len(),
        gen.drift_bins(),
        "sequence length must equal drift bins"
    );
    let acc_mz = accumulator_mz_bins(cfg, gen);
    let mut p = Pipeline::new(
        FrameSource::new(gen.clone(), 0, total_frames),
        cfg.channel_depth,
    )
    .stage(LinkStage::new(cfg.link));
    if let Some(b) = &cfg.binner {
        p = p.stage(BinnerStage::new(b.clone(), gen.drift_bins()));
    }
    p.stage(
        AccumulateStage::new(
            AccumulatorCore::new(gen.drift_bins(), acc_mz, 32),
            frames_per_block.max(1),
            flush_remainder,
        )
        .with_sparse(cfg.sparse)
        .with_shards(cfg.shards.max(1))
        .with_rebuild_binner(cfg.binner.clone(), gen.drift_bins()),
    )
    .stage(
        DeconvolveStage::new(backend, acc_mz)
            .with_fallback(ims_fpga::deconv::DeconvCore::new(seq, cfg.deconv)),
    )
}

/// Result of a hybrid run.
#[derive(Debug, Clone)]
pub struct HybridResult {
    /// Deconvolved block, raw fixed-point words (drift-major).
    pub deconvolved_raw: Vec<i64>,
    /// Frames processed.
    pub frames: u64,
    /// FPGA cycles spent capturing.
    pub capture_cycles: u64,
    /// FPGA cycles spent deconvolving.
    pub deconv_cycles: u64,
    /// Simulated DMA transfer time for all frames, seconds.
    pub simulated_link_seconds: f64,
    /// Actual wall time of the simulation, seconds.
    pub wall_seconds: f64,
    /// Full per-stage instrumentation of the run.
    pub report: PipelineReport,
}

/// Runs the hybrid pipeline: producer thread → bounded channel ("DMA") →
/// FPGA model (capture + accumulate + deconvolve).
pub fn run_hybrid(gen: &FrameGenerator, seq: &MSequence, cfg: &HybridConfig) -> HybridResult {
    run_hybrid_with_backend(gen, seq, cfg, DeconvBackend::fpga(seq, cfg.deconv))
}

/// [`run_hybrid`] with an explicit deconvolution backend (FPGA FWHT core,
/// naive MAC core, or the scheduler software path — all bit-exact equals).
pub fn run_hybrid_with_backend(
    gen: &FrameGenerator,
    seq: &MSequence,
    cfg: &HybridConfig,
    backend: DeconvBackend,
) -> HybridResult {
    let out = hybrid_pipeline(gen, seq, cfg, cfg.frames, cfg.frames, true, backend).run_threaded();
    let report = out.report;
    let mut blocks = out.blocks;
    assert_eq!(blocks.len(), 1, "batch run must produce exactly one block");
    HybridResult {
        deconvolved_raw: blocks.pop().expect("one block").data,
        frames: cfg.frames,
        capture_cycles: report.capture_cycles,
        deconv_cycles: report.deconv_cycles,
        simulated_link_seconds: report.simulated_link_seconds,
        wall_seconds: report.wall_seconds,
        report,
    }
}

/// Single-threaded software reference of the exact same integer pipeline.
/// Must agree with [`run_hybrid`] bit for bit.
pub fn run_software_reference(
    gen: &FrameGenerator,
    seq: &MSequence,
    frames: u64,
    deconv_cfg: DeconvConfig,
) -> Vec<i64> {
    run_software_reference_range(gen, seq, 0, frames, deconv_cfg)
}

/// Software reference over an explicit frame range (frame numbers
/// `start..start + frames`) — the per-block oracle for the streaming
/// pipeline. Runs the same stage graph on the inline executor.
pub fn run_software_reference_range(
    gen: &FrameGenerator,
    seq: &MSequence,
    start: u64,
    frames: u64,
    deconv_cfg: DeconvConfig,
) -> Vec<i64> {
    let out = Pipeline::new(FrameSource::new(gen.clone(), start, frames), 1)
        .stage(AccumulateStage::new(
            AccumulatorCore::new(gen.drift_bins(), gen.mz_bins(), 32),
            frames.max(1),
            true,
        ))
        .stage(DeconvolveStage::new(
            DeconvBackend::fpga(seq, deconv_cfg),
            gen.mz_bins(),
        ))
        .run_inline();
    single_block(out.blocks)
}

/// Software reference of the *binned* integer pipeline (bin → accumulate →
/// deconvolve); the binned hybrid run must agree bit for bit.
pub fn run_software_reference_binned(
    gen: &FrameGenerator,
    seq: &MSequence,
    frames: u64,
    deconv_cfg: DeconvConfig,
    binner: &MzBinner,
) -> Vec<i64> {
    run_software_reference_binned_range(gen, seq, 0, frames, deconv_cfg, binner)
}

/// Binned software reference over an explicit frame range — the per-block
/// oracle for the streaming pipeline when on-chip binning is enabled.
pub fn run_software_reference_binned_range(
    gen: &FrameGenerator,
    seq: &MSequence,
    start: u64,
    frames: u64,
    deconv_cfg: DeconvConfig,
    binner: &MzBinner,
) -> Vec<i64> {
    assert_eq!(binner.fine_bins(), gen.mz_bins());
    let coarse = binner.coarse_bins();
    let out = Pipeline::new(FrameSource::new(gen.clone(), start, frames), 1)
        .stage(BinnerStage::new(binner.clone(), gen.drift_bins()))
        .stage(AccumulateStage::new(
            AccumulatorCore::new(gen.drift_bins(), coarse, 32),
            frames.max(1),
            true,
        ))
        .stage(DeconvolveStage::new(
            DeconvBackend::fpga(seq, deconv_cfg),
            coarse,
        ))
        .run_inline();
    single_block(out.blocks)
}

fn single_block(mut blocks: Vec<crate::pipeline::DeconvolvedBlock>) -> Vec<i64> {
    assert_eq!(blocks.len(), 1, "reference run must produce one block");
    blocks.pop().expect("one block").data
}

/// Result of a streaming (multi-block) hybrid run.
#[derive(Debug, Clone)]
pub struct StreamingResult {
    /// Deconvolved blocks, in order.
    pub blocks: Vec<Vec<i64>>,
    /// Frames accumulated per block.
    pub frames_per_block: u64,
    /// Wall time of the whole run, seconds.
    pub wall_seconds: f64,
    /// Sustained block rate, blocks/s of wall time.
    pub blocks_per_second: f64,
    /// Full per-stage instrumentation of the run.
    pub report: PipelineReport,
}

/// Continuous operation: the producer streams frames indefinitely while the
/// capture stage accumulates and hands finished blocks to a separate
/// deconvolution stage — the double-buffered structure of the real design,
/// run on the threaded executor (one thread per stage, bounded channels
/// providing back-pressure). Honours `cfg.binner`, exactly like
/// [`run_hybrid`].
pub fn run_hybrid_streaming(
    gen: &FrameGenerator,
    seq: &MSequence,
    cfg: &HybridConfig,
    n_blocks: usize,
) -> StreamingResult {
    run_hybrid_streaming_with_backend(
        gen,
        seq,
        cfg,
        n_blocks,
        DeconvBackend::fpga(seq, cfg.deconv),
    )
}

/// [`run_hybrid_streaming`] with an explicit deconvolution backend.
pub fn run_hybrid_streaming_with_backend(
    gen: &FrameGenerator,
    seq: &MSequence,
    cfg: &HybridConfig,
    n_blocks: usize,
    backend: DeconvBackend,
) -> StreamingResult {
    assert!(n_blocks >= 1);
    let frames_per_block = cfg.frames;
    let total_frames = frames_per_block * n_blocks as u64;
    let out = hybrid_pipeline(
        gen,
        seq,
        cfg,
        total_frames,
        frames_per_block,
        false,
        backend,
    )
    .run_threaded();
    let wall_seconds = out.report.wall_seconds;
    StreamingResult {
        blocks: out.blocks.into_iter().map(|b| b.data).collect(),
        frames_per_block,
        wall_seconds,
        blocks_per_second: n_blocks as f64 / wall_seconds,
        report: out.report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acquisition::{acquire, AcquireOptions, GateSchedule};
    use ims_physics::{Instrument, Workload};

    fn generator(degree: u32, mz_bins: usize) -> (FrameGenerator, MSequence) {
        let bins = (1usize << degree) - 1;
        let mut inst = Instrument::with_drift_bins(bins);
        inst.tof.n_bins = mz_bins;
        let w = Workload::single_calibrant();
        let schedule = GateSchedule::multiplexed(degree);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let data = acquire(&inst, &w, &schedule, 1, AcquireOptions::default(), &mut rng);
        let seq = match schedule {
            GateSchedule::Multiplexed { seq } => seq,
            _ => unreachable!(),
        };
        (FrameGenerator::new(&data, &inst.adc, 99), seq)
    }

    #[test]
    fn frames_are_reproducible() {
        let (gen, _) = generator(5, 40);
        assert_eq!(gen.frame(3), gen.frame(3));
        assert_ne!(gen.frame(3), gen.frame(4));
    }

    #[test]
    fn hybrid_matches_software_reference_bit_for_bit() {
        let (gen, seq) = generator(6, 50);
        let cfg = HybridConfig {
            frames: 12,
            ..Default::default()
        };
        let hybrid = run_hybrid(&gen, &seq, &cfg);
        let reference = run_software_reference(&gen, &seq, 12, cfg.deconv);
        assert_eq!(hybrid.deconvolved_raw, reference);
        assert_eq!(hybrid.frames, 12);
        assert!(hybrid.capture_cycles > 0);
        assert!(hybrid.deconv_cycles > 0);
        assert!(hybrid.simulated_link_seconds > 0.0);
    }

    #[test]
    fn hybrid_report_exposes_stage_metrics() {
        let (gen, seq) = generator(5, 30);
        let cfg = HybridConfig {
            frames: 10,
            ..Default::default()
        };
        let result = run_hybrid(&gen, &seq, &cfg);
        let r = &result.report;
        assert_eq!(r.executor, "threaded");
        assert_eq!(r.backend, "fpga-fwht");
        assert_eq!(r.frames, 10);
        assert_eq!(r.blocks, 1);
        assert_eq!(r.frames_per_block, 10);
        let names: Vec<&str> = r.stages.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["source", "link", "accumulate", "deconvolve"]);
        assert_eq!(r.stage("source").unwrap().items_out, 10);
        assert_eq!(r.stage("link").unwrap().items_in, 10);
        assert_eq!(r.stage("accumulate").unwrap().items_out, 1);
        assert_eq!(r.stage("deconvolve").unwrap().items_out, 1);
        // The report is the JSON surface of the htims subcommand.
        assert!(serde_json::to_string(r)
            .unwrap()
            .contains("queue_high_water"));
    }

    #[test]
    fn backpressure_channel_depth_one_still_correct() {
        let (gen, seq) = generator(5, 30);
        let cfg = HybridConfig {
            frames: 8,
            channel_depth: 1,
            ..Default::default()
        };
        let hybrid = run_hybrid(&gen, &seq, &cfg);
        let reference = run_software_reference(&gen, &seq, 8, cfg.deconv);
        assert_eq!(hybrid.deconvolved_raw, reference);
    }

    #[test]
    fn all_backends_agree_bit_for_bit() {
        let (gen, seq) = generator(5, 24);
        let cfg = HybridConfig {
            frames: 6,
            ..Default::default()
        };
        let fpga = run_hybrid_with_backend(&gen, &seq, &cfg, DeconvBackend::fpga(&seq, cfg.deconv));
        let naive =
            run_hybrid_with_backend(&gen, &seq, &cfg, DeconvBackend::naive(&seq, cfg.deconv));
        let soft = run_hybrid_with_backend(
            &gen,
            &seq,
            &cfg,
            DeconvBackend::software(&seq, cfg.deconv, 3),
        );
        assert_eq!(fpga.deconvolved_raw, naive.deconvolved_raw);
        assert_eq!(fpga.deconvolved_raw, soft.deconvolved_raw);
        assert_eq!(naive.report.backend, "naive-mac");
        assert_eq!(soft.report.backend, "software");
        // The backends model different engines, so cycle counts differ
        // (the naive MAC array is the slow baseline).
        assert!(naive.deconv_cycles > fpga.deconv_cycles);
    }

    #[test]
    fn binned_hybrid_matches_binned_reference_bit_for_bit() {
        let (gen, seq) = generator(6, 60);
        let binner = MzBinner::uniform(60, 12);
        let cfg = HybridConfig {
            frames: 16,
            binner: Some(binner.clone()),
            ..Default::default()
        };
        let hybrid = run_hybrid(&gen, &seq, &cfg);
        let reference = run_software_reference_binned(&gen, &seq, 16, cfg.deconv, &binner);
        assert_eq!(hybrid.deconvolved_raw, reference);
        assert_eq!(hybrid.deconvolved_raw.len(), seq.len() * 12);
    }

    #[test]
    fn streaming_blocks_match_per_block_references() {
        let (gen, seq) = generator(6, 40);
        let cfg = HybridConfig {
            frames: 6,
            ..Default::default()
        };
        let result = run_hybrid_streaming(&gen, &seq, &cfg, 4);
        assert_eq!(result.blocks.len(), 4);
        assert_eq!(result.frames_per_block, 6);
        assert!(result.blocks_per_second > 0.0);
        for (b, block) in result.blocks.iter().enumerate() {
            let reference = run_software_reference_range(&gen, &seq, b as u64 * 6, 6, cfg.deconv);
            assert_eq!(block, &reference, "block {b} diverged");
        }
        // Different frames ⇒ different blocks (noise differs per frame).
        assert_ne!(result.blocks[0], result.blocks[1]);
    }

    #[test]
    fn streaming_with_binner_matches_binned_per_block_references() {
        // Regression test: the hand-wired streaming pipeline silently
        // ignored `cfg.binner`; the unified graph honours it.
        let (gen, seq) = generator(6, 48);
        let binner = MzBinner::uniform(48, 8);
        let cfg = HybridConfig {
            frames: 5,
            binner: Some(binner.clone()),
            ..Default::default()
        };
        let result = run_hybrid_streaming(&gen, &seq, &cfg, 3);
        assert_eq!(result.blocks.len(), 3);
        for (b, block) in result.blocks.iter().enumerate() {
            assert_eq!(block.len(), seq.len() * 8, "block {b} is unbinned");
            let reference = run_software_reference_binned_range(
                &gen,
                &seq,
                b as u64 * 5,
                5,
                cfg.deconv,
                &binner,
            );
            assert_eq!(block, &reference, "block {b} diverged");
        }
        assert!(result.report.binner_cycles > 0);
    }

    #[test]
    fn deconvolved_block_recovers_calibrant_peak() {
        let (gen, seq) = generator(7, 60);
        let cfg = HybridConfig {
            frames: 64,
            ..Default::default()
        };
        let result = run_hybrid(&gen, &seq, &cfg);
        // Collapse to a drift profile and locate the apex.
        let n = seq.len();
        let mz = gen.mz_bins();
        let profile: Vec<f64> = (0..n)
            .map(|d| {
                result.deconvolved_raw[d * mz..(d + 1) * mz]
                    .iter()
                    .map(|&v| v as f64)
                    .sum()
            })
            .collect();
        let (apex, peak) = ims_signal::stats::argmax(&profile).unwrap();
        assert!(peak > 0.0);
        // The calibrant must land within the drift window interior.
        assert!(apex > 5 && apex < n - 5, "apex {apex}");
    }
}
