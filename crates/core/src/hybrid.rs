//! The hybrid pipeline: a CPU producer streams raw frames over a
//! (simulated) DMA link to the FPGA model, which captures, accumulates, and
//! deconvolves; a collector receives the results.
//!
//! This is the paper's architecture in miniature: "the software portion is
//! in charge of streaming data to the FPGA and collecting results". The
//! crucial correctness property — the FPGA component computes *exactly*
//! what the software reference computes — is checkable here because the
//! whole datapath is integer/fixed-point and every frame is reproducible
//! from `(seed, frame_no)`.

use crate::acquisition::AcquiredData;
use crossbeam::channel;
use ims_fpga::deconv::{DeconvConfig, DeconvCore};
use ims_fpga::dma::{DmaLink, FramePacket};
use ims_fpga::{AccumulatorCore, MzBinner};
use ims_prs::MSequence;
use ims_signal::noise::{gaussian, poisson};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Deterministic per-frame raw-data generator (the instrument's digitiser
/// output, frame by frame).
#[derive(Debug, Clone)]
pub struct FrameGenerator {
    expected_per_frame: Vec<f64>,
    drift_bins: usize,
    mz_bins: usize,
    gain: f64,
    gain_spread: f64,
    noise_sigma: f64,
    full_scale: f64,
    seed: u64,
}

impl FrameGenerator {
    /// Builds a generator from an acquisition's noise-free per-frame
    /// expectation (see [`AcquiredData::expected`]) and the instrument's
    /// ADC parameters.
    pub fn new(data: &AcquiredData, adc: &ims_physics::detector::AdcDetector, seed: u64) -> Self {
        Self {
            expected_per_frame: data.expected.data().to_vec(),
            drift_bins: data.expected.drift_bins(),
            mz_bins: data.expected.mz_bins(),
            gain: adc.gain,
            gain_spread: adc.gain_spread,
            noise_sigma: adc.noise_sigma,
            full_scale: adc.full_scale,
            seed,
        }
    }

    /// Number of drift bins per frame.
    pub fn drift_bins(&self) -> usize {
        self.drift_bins
    }

    /// Number of m/z bins per frame.
    pub fn mz_bins(&self) -> usize {
        self.mz_bins
    }

    /// Frame payload size, bytes.
    pub fn frame_bytes(&self) -> usize {
        self.drift_bins * self.mz_bins * 4
    }

    /// Generates frame `frame_no` — bit-reproducible for a given generator.
    pub fn frame(&self, frame_no: u64) -> Vec<u32> {
        let mut rng =
            ChaCha8Rng::seed_from_u64(self.seed ^ frame_no.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        self.expected_per_frame
            .iter()
            .map(|&mean| {
                let n = poisson(&mut rng, mean.max(0.0)) as f64;
                let amp = n * self.gain
                    + self.gain * self.gain_spread * n.sqrt() * gaussian(&mut rng)
                    + self.noise_sigma * gaussian(&mut rng);
                amp.clamp(0.0, self.full_scale).round() as u32
            })
            .collect()
    }
}

/// Configuration of a hybrid run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HybridConfig {
    /// Frames to stream.
    pub frames: u64,
    /// Bounded channel depth between producer and FPGA (back-pressure).
    pub channel_depth: usize,
    /// FPGA deconvolution configuration.
    pub deconv: DeconvConfig,
    /// Host-link model used for the simulated-time accounting.
    pub link: DmaLink,
    /// Optional on-chip m/z binning stage in front of the accumulator
    /// (frames arrive at the binner's fine resolution).
    pub binner: Option<MzBinner>,
}

impl Default for HybridConfig {
    fn default() -> Self {
        Self {
            frames: 32,
            channel_depth: 4,
            deconv: DeconvConfig::default(),
            link: DmaLink::rapidarray(),
            binner: None,
        }
    }
}

/// The accumulator's m/z width under a config (coarse when binning).
fn accumulator_mz_bins(cfg: &HybridConfig, gen: &FrameGenerator) -> usize {
    match &cfg.binner {
        Some(b) => {
            assert_eq!(
                b.fine_bins(),
                gen.mz_bins(),
                "binner input must match the frame resolution"
            );
            b.coarse_bins()
        }
        None => gen.mz_bins(),
    }
}

/// Result of a hybrid run.
#[derive(Debug, Clone)]
pub struct HybridResult {
    /// Deconvolved block, raw fixed-point words (drift-major).
    pub deconvolved_raw: Vec<i64>,
    /// Frames processed.
    pub frames: u64,
    /// FPGA cycles spent capturing.
    pub capture_cycles: u64,
    /// FPGA cycles spent deconvolving.
    pub deconv_cycles: u64,
    /// Simulated DMA transfer time for all frames, seconds.
    pub simulated_link_seconds: f64,
    /// Actual wall time of the simulation, seconds.
    pub wall_seconds: f64,
}

/// Runs the hybrid pipeline: producer thread → bounded channel ("DMA") →
/// FPGA model (capture + accumulate + deconvolve).
pub fn run_hybrid(gen: &FrameGenerator, seq: &MSequence, cfg: &HybridConfig) -> HybridResult {
    assert_eq!(
        seq.len(),
        gen.drift_bins(),
        "sequence length must equal drift bins"
    );
    let start = std::time::Instant::now();
    let (tx, rx) = channel::bounded::<FramePacket>(cfg.channel_depth);
    let frames = cfg.frames;

    let acc_mz = accumulator_mz_bins(cfg, gen);
    let mut acc = AccumulatorCore::new(gen.drift_bins(), acc_mz, 32);
    let mut deconv = DeconvCore::new(seq, cfg.deconv);
    let mut binner = cfg.binner.clone();

    let mut simulated_link_seconds = 0.0;
    let deconvolved_raw = std::thread::scope(|scope| {
        // Producer: the "software portion streaming data to the FPGA".
        scope.spawn(move || {
            for f in 0..frames {
                let packet = FramePacket::from_words(f, &gen.frame(f));
                if tx.send(packet).is_err() {
                    return; // consumer gone
                }
            }
        });

        // Consumer: the FPGA component.
        for packet in rx.iter() {
            simulated_link_seconds += cfg.link.transfer_time_s(packet.len_bytes());
            let words = packet.to_words();
            match binner.as_mut() {
                Some(b) => {
                    let binned = b.bin_frame(&words, gen.drift_bins());
                    acc.capture_frame(&binned).expect("frame shape");
                }
                None => acc.capture_frame(&words).expect("frame shape"),
            }
        }
        let block = acc.drain();
        deconv.deconvolve_block(&block, acc_mz)
    });

    HybridResult {
        deconvolved_raw,
        frames,
        capture_cycles: acc.cycles(),
        deconv_cycles: deconv.cycles(),
        simulated_link_seconds,
        wall_seconds: start.elapsed().as_secs_f64(),
    }
}

/// Single-threaded software reference of the exact same integer pipeline.
/// Must agree with [`run_hybrid`] bit for bit.
pub fn run_software_reference(
    gen: &FrameGenerator,
    seq: &MSequence,
    frames: u64,
    deconv_cfg: DeconvConfig,
) -> Vec<i64> {
    run_software_reference_range(gen, seq, 0, frames, deconv_cfg)
}

/// Software reference over an explicit frame range (frame numbers
/// `start..start + frames`) — the per-block oracle for the streaming
/// pipeline.
pub fn run_software_reference_range(
    gen: &FrameGenerator,
    seq: &MSequence,
    start: u64,
    frames: u64,
    deconv_cfg: DeconvConfig,
) -> Vec<i64> {
    let mut acc = AccumulatorCore::new(gen.drift_bins(), gen.mz_bins(), 32);
    for f in start..start + frames {
        acc.capture_frame(&gen.frame(f)).expect("frame shape");
    }
    let block = acc.drain();
    let mut deconv = DeconvCore::new(seq, deconv_cfg);
    deconv.deconvolve_block(&block, gen.mz_bins())
}

/// Software reference of the *binned* integer pipeline (bin → accumulate →
/// deconvolve); the binned hybrid run must agree bit for bit.
pub fn run_software_reference_binned(
    gen: &FrameGenerator,
    seq: &MSequence,
    frames: u64,
    deconv_cfg: DeconvConfig,
    binner: &MzBinner,
) -> Vec<i64> {
    assert_eq!(binner.fine_bins(), gen.mz_bins());
    let mut b = binner.clone();
    let mut acc = AccumulatorCore::new(gen.drift_bins(), binner.coarse_bins(), 32);
    for f in 0..frames {
        let binned = b.bin_frame(&gen.frame(f), gen.drift_bins());
        acc.capture_frame(&binned).expect("frame shape");
    }
    let block = acc.drain();
    let mut deconv = DeconvCore::new(seq, deconv_cfg);
    deconv.deconvolve_block(&block, binner.coarse_bins())
}

/// Result of a streaming (multi-block) hybrid run.
#[derive(Debug, Clone)]
pub struct StreamingResult {
    /// Deconvolved blocks, in order.
    pub blocks: Vec<Vec<i64>>,
    /// Frames accumulated per block.
    pub frames_per_block: u64,
    /// Wall time of the whole run, seconds.
    pub wall_seconds: f64,
    /// Sustained block rate, blocks/s of wall time.
    pub blocks_per_second: f64,
}

/// Continuous operation: the producer streams frames indefinitely while the
/// capture stage accumulates and hands finished blocks to a separate
/// deconvolution stage — the double-buffered structure of the real design,
/// here as three concurrent threads (producer → capture → deconvolve) with
/// bounded channels providing back-pressure.
pub fn run_hybrid_streaming(
    gen: &FrameGenerator,
    seq: &MSequence,
    cfg: &HybridConfig,
    n_blocks: usize,
) -> StreamingResult {
    assert_eq!(seq.len(), gen.drift_bins(), "sequence length mismatch");
    assert!(n_blocks >= 1);
    let frames_per_block = cfg.frames;
    let total_frames = frames_per_block * n_blocks as u64;
    let start = std::time::Instant::now();

    let (frame_tx, frame_rx) = channel::bounded::<FramePacket>(cfg.channel_depth);
    let (block_tx, block_rx) = channel::bounded::<Vec<u64>>(2); // ping-pong

    let blocks = std::thread::scope(|scope| {
        // Stage 1: producer (the instrument's digitiser stream).
        scope.spawn(move || {
            for f in 0..total_frames {
                let packet = FramePacket::from_words(f, &gen.frame(f));
                if frame_tx.send(packet).is_err() {
                    return;
                }
            }
        });

        // Stage 2: capture/accumulate; drains a block every
        // `frames_per_block` frames.
        let mz_bins = gen.mz_bins();
        let drift_bins = gen.drift_bins();
        scope.spawn(move || {
            let mut acc = AccumulatorCore::new(drift_bins, mz_bins, 32);
            let mut in_block = 0u64;
            for packet in frame_rx.iter() {
                let words = packet.to_words();
                acc.capture_frame(&words).expect("frame shape");
                in_block += 1;
                if in_block == frames_per_block {
                    in_block = 0;
                    if block_tx.send(acc.drain()).is_err() {
                        return;
                    }
                }
            }
        });

        // Stage 3: deconvolution (this thread).
        let mut deconv = DeconvCore::new(seq, cfg.deconv);
        let mut out = Vec::with_capacity(n_blocks);
        for block in block_rx.iter() {
            out.push(deconv.deconvolve_block(&block, gen.mz_bins()));
            if out.len() == n_blocks {
                break;
            }
        }
        out
    });

    let wall_seconds = start.elapsed().as_secs_f64();
    StreamingResult {
        blocks,
        frames_per_block,
        wall_seconds,
        blocks_per_second: n_blocks as f64 / wall_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acquisition::{acquire, AcquireOptions, GateSchedule};
    use ims_physics::{Instrument, Workload};

    fn generator(degree: u32, mz_bins: usize) -> (FrameGenerator, MSequence) {
        let bins = (1usize << degree) - 1;
        let mut inst = Instrument::with_drift_bins(bins);
        inst.tof.n_bins = mz_bins;
        let w = Workload::single_calibrant();
        let schedule = GateSchedule::multiplexed(degree);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let data = acquire(
            &inst,
            &w,
            &schedule,
            1,
            AcquireOptions::default(),
            &mut rng,
        );
        let seq = match schedule {
            GateSchedule::Multiplexed { seq } => seq,
            _ => unreachable!(),
        };
        (FrameGenerator::new(&data, &inst.adc, 99), seq)
    }

    #[test]
    fn frames_are_reproducible() {
        let (gen, _) = generator(5, 40);
        assert_eq!(gen.frame(3), gen.frame(3));
        assert_ne!(gen.frame(3), gen.frame(4));
    }

    #[test]
    fn hybrid_matches_software_reference_bit_for_bit() {
        let (gen, seq) = generator(6, 50);
        let cfg = HybridConfig {
            frames: 12,
            ..Default::default()
        };
        let hybrid = run_hybrid(&gen, &seq, &cfg);
        let reference = run_software_reference(&gen, &seq, 12, cfg.deconv);
        assert_eq!(hybrid.deconvolved_raw, reference);
        assert_eq!(hybrid.frames, 12);
        assert!(hybrid.capture_cycles > 0);
        assert!(hybrid.deconv_cycles > 0);
        assert!(hybrid.simulated_link_seconds > 0.0);
    }

    #[test]
    fn backpressure_channel_depth_one_still_correct() {
        let (gen, seq) = generator(5, 30);
        let cfg = HybridConfig {
            frames: 8,
            channel_depth: 1,
            ..Default::default()
        };
        let hybrid = run_hybrid(&gen, &seq, &cfg);
        let reference = run_software_reference(&gen, &seq, 8, cfg.deconv);
        assert_eq!(hybrid.deconvolved_raw, reference);
    }

    #[test]
    fn binned_hybrid_matches_binned_reference_bit_for_bit() {
        let (gen, seq) = generator(6, 60);
        let binner = MzBinner::uniform(60, 12);
        let cfg = HybridConfig {
            frames: 16,
            binner: Some(binner.clone()),
            ..Default::default()
        };
        let hybrid = run_hybrid(&gen, &seq, &cfg);
        let reference = run_software_reference_binned(&gen, &seq, 16, cfg.deconv, &binner);
        assert_eq!(hybrid.deconvolved_raw, reference);
        assert_eq!(hybrid.deconvolved_raw.len(), seq.len() * 12);
    }

    #[test]
    fn streaming_blocks_match_per_block_references() {
        let (gen, seq) = generator(6, 40);
        let cfg = HybridConfig {
            frames: 6,
            ..Default::default()
        };
        let result = run_hybrid_streaming(&gen, &seq, &cfg, 4);
        assert_eq!(result.blocks.len(), 4);
        assert_eq!(result.frames_per_block, 6);
        assert!(result.blocks_per_second > 0.0);
        for (b, block) in result.blocks.iter().enumerate() {
            let reference =
                run_software_reference_range(&gen, &seq, b as u64 * 6, 6, cfg.deconv);
            assert_eq!(block, &reference, "block {b} diverged");
        }
        // Different frames ⇒ different blocks (noise differs per frame).
        assert_ne!(result.blocks[0], result.blocks[1]);
    }

    #[test]
    fn deconvolved_block_recovers_calibrant_peak() {
        let (gen, seq) = generator(7, 60);
        let cfg = HybridConfig {
            frames: 64,
            ..Default::default()
        };
        let result = run_hybrid(&gen, &seq, &cfg);
        // Collapse to a drift profile and locate the apex.
        let n = seq.len();
        let mz = gen.mz_bins();
        let profile: Vec<f64> = (0..n)
            .map(|d| {
                result.deconvolved_raw[d * mz..(d + 1) * mz]
                    .iter()
                    .map(|&v| v as f64)
                    .sum()
            })
            .collect();
        let (apex, peak) = ims_signal::stats::argmax(&profile).unwrap();
        assert!(peak > 0.0);
        // The calibrant must land within the drift window interior.
        assert!(apex > 5 && apex < n - 5, "apex {apex}");
    }
}
