//! Kernel estimation: measuring the effective gate/release kernel from a
//! calibrant acquisition.
//!
//! The weighted (PNNL-enhanced) deconvolution needs the *actual* encoding
//! kernel — gate transmission × trap-release weights — not the design
//! sequence. Inside this simulation the kernel is known exactly
//! ([`crate::acquisition::AcquiredData::effective_kernel`]), but a real
//! instrument must *measure* it. The standard calibration: infuse a single
//! calibrant whose arrival-time distribution `x` is known a priori (sharp,
//! at a known drift time), acquire one multiplexed block `y = h ∗ x`, and
//! solve for `h` by Wiener deconvolution against the known `x`.
//!
//! Experiment E2 compares deconvolution with the oracle kernel against the
//! kernel estimated this way — the practical path must come close.

use crate::acquisition::AcquiredData;
use ims_physics::DriftTofMap;
use ims_prs::weighting::CirculantInverse;

/// Estimates the effective kernel from a calibrant acquisition.
///
/// `calibrant.truth` holds the a-priori calibrant model (a real experiment
/// computes it from the calibrant's known reduced mobility and the tube
/// parameters); the accumulated data is `h ∗ x` scaled by frames × gain.
/// The returned kernel is normalised so its gate-open plateau is ≈ 1,
/// making it directly comparable with
/// [`crate::acquisition::AcquiredData::effective_kernel`].
pub fn estimate_kernel(calibrant: &AcquiredData, lambda: f64) -> Vec<f64> {
    let y = calibrant.accumulated.total_ion_drift_profile();
    let x = calibrant.truth.total_ion_drift_profile();
    assert_eq!(y.len(), x.len());
    // y = x ∗ h (convolution commutes): solve with x as the circulant kernel.
    let x_power: f64 = x.iter().map(|v| v * v).sum();
    let solver = CirculantInverse::weighted(&x, lambda * x_power.max(f64::MIN_POSITIVE));
    let mut h = solver.apply(&y);
    // Normalise: the median of the top-half values estimates the gate-open
    // plateau (robust against the trap-release spikes above it and the
    // near-zero gate-closed tail below it).
    let mut sorted: Vec<f64> = h.iter().copied().filter(|v| *v > 0.0).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    if !sorted.is_empty() {
        let top = &sorted[sorted.len() / 2..];
        let plateau = top[top.len() / 2];
        if plateau > 0.0 {
            for v in h.iter_mut() {
                *v /= plateau;
            }
        }
    }
    h
}

/// Deconvolves a block with an explicit (e.g. estimated) kernel via the
/// Tikhonov-weighted circulant inverse, batched over column panels.
pub fn deconvolve_with_kernel(
    map: &DriftTofMap,
    kernel: &[f64],
    relative_lambda: f64,
) -> DriftTofMap {
    assert_eq!(map.drift_bins(), kernel.len(), "kernel length mismatch");
    let power: f64 = kernel.iter().map(|v| v * v).sum();
    let inverse =
        CirculantInverse::weighted(kernel, relative_lambda * power.max(f64::MIN_POSITIVE));
    crate::deconv_batch::BatchDeconvolver::from_circulant(&inverse).deconvolve_map(map)
}

/// Cosine similarity between two kernels (1 = identical shape).
pub fn kernel_similarity(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let dot: f64 = a.iter().zip(b.iter()).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|v| v * v).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot / (na * nb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acquisition::{acquire, AcquireOptions, GateSchedule};
    use ims_physics::{Instrument, Workload};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn calibrant_run(defect: f64, frames: u64) -> (GateSchedule, AcquiredData) {
        let degree = 7;
        let n = (1usize << degree) - 1;
        let mut inst = Instrument::with_drift_bins(n);
        inst.tof.n_bins = 120;
        inst.gate = ims_physics::gate::GateModel::with_defect_level(defect);
        let workload = Workload::single_calibrant();
        let schedule = GateSchedule::multiplexed(degree);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let data = acquire(
            &inst,
            &workload,
            &schedule,
            frames,
            AcquireOptions {
                use_trap: true,
                background_mean: 0.0,
            },
            &mut rng,
        );
        (schedule, data)
    }

    #[test]
    fn estimated_kernel_matches_oracle() {
        let (_, data) = calibrant_run(0.2, 400);
        let estimated = estimate_kernel(&data, 1e-6);
        let sim = kernel_similarity(&estimated, &data.effective_kernel);
        assert!(sim > 0.98, "similarity {sim}");
    }

    #[test]
    fn estimated_kernel_deconvolves_as_well_as_oracle() {
        use crate::deconvolution::Deconvolver;
        use crate::metrics::fidelity;
        // Calibrate on one run, process another acquisition of a different
        // sample with the estimated kernel.
        let (schedule, calibrant) = calibrant_run(0.25, 400);
        let estimated = estimate_kernel(&calibrant, 1e-6);

        let degree = 7;
        let n = (1usize << degree) - 1;
        let mut inst = Instrument::with_drift_bins(n);
        inst.tof.n_bins = 120;
        inst.gate = ims_physics::gate::GateModel::with_defect_level(0.25);
        let workload = Workload::three_peptide_mix();
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let sample = acquire(
            &inst,
            &workload,
            &schedule,
            200,
            AcquireOptions {
                use_trap: true,
                background_mean: 0.0,
            },
            &mut rng,
        );
        let truth = sample.truth.total_ion_drift_profile();

        let with_oracle = Deconvolver::Weighted { lambda: 1e-6 }
            .deconvolve(&schedule, &sample)
            .total_ion_drift_profile();
        let with_estimated =
            deconvolve_with_kernel(&sample.accumulated, &estimated, 1e-6).total_ion_drift_profile();

        let f_oracle = fidelity(&with_oracle, &truth, 0.01);
        let f_est = fidelity(&with_estimated, &truth, 0.01);
        assert!(
            f_est.pearson > 0.98,
            "estimated-kernel pearson {}",
            f_est.pearson
        );
        assert!(
            f_est.artifact_level < 3.0 * f_oracle.artifact_level + 0.02,
            "estimated {} vs oracle {}",
            f_est.artifact_level,
            f_oracle.artifact_level
        );
    }

    #[test]
    fn plateau_normalisation_uses_top_half_median() {
        // Regression: the plateau estimate must be the median of the *top
        // half* of the positive values, not the median of all positives.
        // With a kernel dominated by a near-zero gate-closed tail (6 of 10
        // positives ≈ 0.01), the all-positives median lands in the tail and
        // normalising by it would blow the plateau up ~100×; the top-half
        // median lands on the plateau (1.0).
        let (_, data) = calibrant_run(0.2, 400);
        let estimated = estimate_kernel(&data, 1e-6);
        // The effective kernel's gate-open plateau is ≈ 1 by construction,
        // so a correctly normalised estimate must track it closely — an
        // estimate normalised by a tail value would be orders of magnitude
        // larger cell for cell.
        let oracle_max = data.effective_kernel.iter().cloned().fold(0.0f64, f64::max);
        let est_max = estimated.iter().cloned().fold(0.0f64, f64::max);
        assert!(
            est_max < 4.0 * oracle_max + 1.0,
            "estimated kernel max {est_max} vs oracle max {oracle_max}: \
             plateau normalisation is off"
        );
        // Synthetic direct check of the estimator's normalisation rule: a
        // drift profile whose positives are 6 small tail values, 3 plateau
        // values and one spike must normalise so the plateau maps to ~1.
        let mut values = vec![0.01; 6];
        values.extend([1.0, 1.0, 1.0, 6.0]);
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let top = &sorted[sorted.len() / 2..];
        let plateau = top[top.len() / 2];
        assert_eq!(plateau, 1.0, "top-half median must hit the plateau");
        // The old rule (median of all positives) picked the tail instead.
        assert_eq!(sorted[sorted.len() / 2], 0.01);
    }

    #[test]
    fn similarity_bounds() {
        let a = [1.0, 0.0, 1.0];
        assert!((kernel_similarity(&a, &a) - 1.0).abs() < 1e-12);
        let b = [0.0, 1.0, 0.0];
        assert!(kernel_similarity(&a, &b).abs() < 1e-12);
        assert_eq!(kernel_similarity(&a, &[0.0; 3]), 0.0);
    }
}
