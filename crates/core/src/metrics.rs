//! Scoring: SNR, reconstruction fidelity, artifact level, dynamic range.

use ims_physics::DriftTofMap;
use ims_signal::{snr, stats};
use serde::{Deserialize, Serialize};

// Runtime instrumentation lives with the pipeline but is part of the same
// scoring surface: fidelity/SNR say how *good* a run was, the pipeline
// report says where its time went.
pub use crate::pipeline::{PipelineReport, StageReport};

/// How faithfully a deconvolved drift profile matches the ground truth.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Fidelity {
    /// Pearson correlation with the truth profile.
    pub pearson: f64,
    /// RMS error after normalising both profiles to unit maximum.
    pub nrmse: f64,
    /// Largest spurious response outside the truth's support, relative to
    /// the true peak maximum (deconvolution "echo" level).
    pub artifact_level: f64,
}

/// Compares a reconstructed drift profile against the truth.
///
/// The truth's support is every bin where it exceeds `support_frac` of its
/// maximum (plus one guard bin each side); anything the reconstruction puts
/// outside that support is an artifact.
pub fn fidelity(reconstructed: &[f64], truth: &[f64], support_frac: f64) -> Fidelity {
    assert_eq!(reconstructed.len(), truth.len(), "length mismatch");
    let t_max = stats::max_abs(truth).max(f64::MIN_POSITIVE);
    let r_max = stats::max_abs(reconstructed).max(f64::MIN_POSITIVE);
    let tn: Vec<f64> = truth.iter().map(|v| v / t_max).collect();
    let rn: Vec<f64> = reconstructed.iter().map(|v| v / r_max).collect();

    let n = truth.len();
    let mut in_support = vec![false; n];
    for i in 0..n {
        if tn[i] > support_frac {
            in_support[i] = true;
            if i > 0 {
                in_support[i - 1] = true;
            }
            if i + 1 < n {
                in_support[i + 1] = true;
            }
        }
    }
    // Artifacts are *excess* response outside the support — comparing to
    // the (tiny) true tail keeps a perfect reconstruction at exactly 0.
    let artifact_level = (0..n)
        .filter(|&i| !in_support[i])
        .map(|i| (rn[i] - tn[i]).abs())
        .fold(0.0f64, f64::max);

    Fidelity {
        pearson: stats::pearson(&rn, &tn),
        nrmse: stats::rmse(&rn, &tn),
        artifact_level,
    }
}

/// SNR of the reconstructed peak nearest `expected_bin`, using a robust
/// noise floor from the rest of the profile (±`exclude` bins around the
/// peak excluded).
pub fn peak_snr(profile: &[f64], expected_bin: usize, exclude: usize) -> f64 {
    // Find the local apex within the exclusion window.
    let lo = expected_bin.saturating_sub(exclude / 2);
    let hi = (expected_bin + exclude / 2 + 1).min(profile.len());
    if lo >= hi {
        return 0.0;
    }
    let (local_apex, _) = stats::argmax(&profile[lo..hi]).unwrap_or((0, 0.0));
    snr::snr_at(profile, lo + local_apex, exclude)
}

/// Extracted-window SNR of a species on a 2-D map: drift profile over an
/// m/z window, peak at the predicted drift bin.
pub fn species_snr(map: &DriftTofMap, drift_bin: usize, mz_bin: usize, mz_halfwidth: usize) -> f64 {
    let lo = mz_bin.saturating_sub(mz_halfwidth);
    let hi = (mz_bin + mz_halfwidth).min(map.mz_bins() - 1);
    let profile = map.drift_profile(lo, hi);
    peak_snr(&profile, drift_bin, map.drift_bins() / 16 + 4)
}

/// Linear-regression slope of response vs concentration in log-log space —
/// 1.0 means a perfectly linear dynamic range.
pub fn loglog_slope(concentrations: &[f64], responses: &[f64]) -> f64 {
    assert_eq!(concentrations.len(), responses.len());
    let pts: Vec<(f64, f64)> = concentrations
        .iter()
        .zip(responses.iter())
        .filter(|(&c, &r)| c > 0.0 && r > 0.0)
        .map(|(&c, &r)| (c.ln(), r.ln()))
        .collect();
    if pts.len() < 2 {
        return f64::NAN;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ims_signal::peaks::gaussian_profile;

    #[test]
    fn perfect_reconstruction_scores_perfectly() {
        let truth = gaussian_profile(200, 100.0, 4.0, 1000.0);
        let f = fidelity(&truth, &truth, 0.01);
        assert!(f.pearson > 0.999_999);
        assert!(f.nrmse < 1e-9);
        assert!(f.artifact_level < 1e-9);
    }

    #[test]
    fn scaled_reconstruction_still_perfect() {
        let truth = gaussian_profile(200, 100.0, 4.0, 1000.0);
        let scaled: Vec<f64> = truth.iter().map(|v| v * 7.3).collect();
        let f = fidelity(&scaled, &truth, 0.01);
        assert!(f.pearson > 0.999_999);
        assert!(f.nrmse < 1e-9);
    }

    #[test]
    fn echo_artifacts_are_flagged() {
        let truth = gaussian_profile(200, 100.0, 4.0, 1000.0);
        let mut bad = truth.clone();
        // A ghost peak at 10 % of the main peak, far from the support.
        let ghost = gaussian_profile(200, 30.0, 4.0, 100.0);
        for (b, g) in bad.iter_mut().zip(ghost.iter()) {
            *b += g;
        }
        let f = fidelity(&bad, &truth, 0.01);
        assert!(
            f.artifact_level > 0.08 && f.artifact_level < 0.15,
            "artifact {}",
            f.artifact_level
        );
    }

    #[test]
    fn peak_snr_tracks_noise() {
        use ims_signal::noise::add_electronic_noise;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let mut profile = gaussian_profile(400, 200.0, 5.0, 2000.0);
        add_electronic_noise(&mut rng, &mut profile, 2.0);
        let s = peak_snr(&profile, 202, 30);
        assert!(s > 20.0, "snr {s}");
        // Pointing at empty space gives a small number.
        let s_empty = peak_snr(&profile, 50, 10);
        assert!(s_empty < 6.0, "empty snr {s_empty}");
    }

    #[test]
    fn loglog_slope_of_linear_response_is_one() {
        let conc = [0.01, 0.1, 1.0, 10.0, 100.0];
        let resp: Vec<f64> = conc.iter().map(|c| 55.0 * c).collect();
        let s = loglog_slope(&conc, &resp);
        assert!((s - 1.0).abs() < 1e-9, "slope {s}");
        // Saturating response has slope < 1.
        let sat: Vec<f64> = conc.iter().map(|c| c / (1.0 + 0.5 * c)).collect();
        let s2 = loglog_slope(&conc, &sat);
        assert!(s2 < 0.8, "slope {s2}");
    }

    #[test]
    fn degenerate_inputs() {
        assert!(loglog_slope(&[1.0], &[2.0]).is_nan());
        assert_eq!(peak_snr(&[], 0, 2), 0.0);
    }
}
