//! Executors: run a stage graph threaded (bounded channels, one thread per
//! stage) or inline (sequentially on the calling thread).
//!
//! Both executors drive the same [`Stage`] objects in the same order over
//! the same integer datapath, so their outputs are bit-identical by
//! construction; the threaded executor adds the concurrency — and the
//! back-pressure instrumentation — of the real design.
//!
//! Both executors are also instrumented with `ims_obs`: every stage
//! iteration opens a span (category = stage name), channel waits get their
//! own `recv-wait`/`send-wait` spans, and input-queue depths are sampled
//! into gauges and Chrome counter tracks. All of it is inert — one atomic
//! load per span — unless a `TraceSession` is active. Per-item processing
//! latency additionally feeds a histogram per stage (always on; a handful
//! of relaxed atomics per *item*, where items are frames or blocks).

use super::report::{PipelineReport, StageReport};
use super::stages::FrameSource;
use super::{DeconvolvedBlock, Message, Stage};
use crossbeam::channel::{bounded, Receiver, Sender};
use std::time::{Duration, Instant};

/// A source plus an ordered chain of stages, ready to run.
pub struct Pipeline {
    source: FrameSource,
    stages: Vec<Box<dyn Stage>>,
    channel_depth: usize,
}

/// What a pipeline run returns: the deconvolved blocks (in order) and the
/// instrumentation report.
#[derive(Debug, Clone)]
pub struct PipelineOutput {
    /// Deconvolved blocks, in block order.
    pub blocks: Vec<DeconvolvedBlock>,
    /// Run instrumentation.
    pub report: PipelineReport,
}

impl Pipeline {
    /// Starts a graph from a frame source; `channel_depth` bounds the
    /// frame channels of the threaded executor (back-pressure).
    pub fn new(source: FrameSource, channel_depth: usize) -> Self {
        Self {
            source,
            stages: Vec::new(),
            channel_depth: channel_depth.max(1),
        }
    }

    /// Appends a stage to the chain.
    pub fn stage(mut self, stage: impl Stage + 'static) -> Self {
        self.stages.push(Box::new(stage));
        self
    }

    /// Runs the graph with one thread per stage connected by bounded
    /// channels — the concurrent structure of the paper's design. Frames
    /// flow through channels of depth `channel_depth`; block hand-offs use
    /// the stages' own depth (2, the double-buffered readout).
    pub fn run_threaded(mut self) -> PipelineOutput {
        assert!(!self.stages.is_empty(), "pipeline has no stages");
        let start = Instant::now();
        let depth = self.channel_depth;
        let n = self.stages.len();

        // Channel i feeds stage i; channel n carries the final output.
        let mut txs: Vec<Sender<Message>> = Vec::with_capacity(n + 1);
        let mut rxs: Vec<Receiver<Message>> = Vec::with_capacity(n + 1);
        let (tx0, rx0) = bounded::<Message>(depth);
        txs.push(tx0);
        rxs.push(rx0);
        for stage in &self.stages {
            let (tx, rx) = bounded::<Message>(stage.output_depth(depth));
            txs.push(tx);
            rxs.push(rx);
        }

        let stages = std::mem::take(&mut self.stages);
        let source = &self.source;
        let frames = source.frames();

        let (blocks, meters, stages) = std::thread::scope(|scope| {
            let mut tx_iter = txs.into_iter();
            let mut rx_iter = rxs.into_iter();

            // Source thread: the "software portion streaming data".
            let src_tx = tx_iter.next().expect("source channel");
            let src_handle = scope.spawn(move || {
                ims_obs::set_thread_name("source");
                let mut meter = StageMeter::new("source");
                for i in 0..frames {
                    let t = Instant::now();
                    let packet = {
                        let _sp = ims_obs::span_cat("source", "process");
                        source.packet(i)
                    };
                    let gen = t.elapsed();
                    meter.busy += gen;
                    meter.record_latency(gen);
                    if meter.timed_send(&src_tx, Message::Frame(packet)).is_err() {
                        break; // downstream gone
                    }
                }
                meter
            });

            // One thread per stage.
            let mut handles = Vec::with_capacity(stages.len());
            for mut stage in stages {
                let rx = rx_iter.next().expect("stage input channel");
                let tx = tx_iter.next().expect("stage output channel");
                handles.push(scope.spawn(move || {
                    let name = stage.name();
                    ims_obs::set_thread_name(name);
                    let queue_gauge =
                        ims_obs::metrics::gauge(&format!("pipeline.queue_depth.{name}"));
                    let mut meter = StageMeter::new(name);
                    loop {
                        let depth = rx.len() as u64;
                        meter.queue_high_water = meter.queue_high_water.max(depth);
                        queue_gauge.set(depth);
                        ims_obs::counter_sample("queue-depth", name, depth as f64);
                        let t = Instant::now();
                        let msg = {
                            let _sp = ims_obs::span_cat(name, "recv-wait");
                            rx.recv()
                        };
                        meter.blocked_recv += t.elapsed();
                        let Ok(msg) = msg else { break };
                        meter.items_in += 1;
                        meter.timed_process(stage.as_mut(), msg, &tx);
                        meter.refresh_cells(stage.as_ref());
                    }
                    meter.timed_flush(stage.as_mut(), &tx);
                    meter.refresh_cells(stage.as_ref());
                    drop(tx);
                    (stage, meter)
                }));
            }

            // This thread is the collector: drain the final channel while
            // the stages run (bounded channels would deadlock otherwise).
            let out_rx = rx_iter.next().expect("output channel");
            let mut blocks = Vec::new();
            for msg in out_rx.iter() {
                if let Message::Deconvolved(b) = msg {
                    blocks.push(b);
                }
            }

            let src_meter = src_handle.join().expect("source thread panicked");
            let mut meters = vec![src_meter];
            let mut stages_back = Vec::with_capacity(handles.len());
            for h in handles {
                let (stage, meter) = h.join().expect("stage thread panicked");
                meters.push(meter);
                stages_back.push(stage);
            }
            (blocks, meters, stages_back)
        });

        let mut report = PipelineReport::new("threaded");
        report.channel_depth = depth;
        self.finish_report(&mut report, stages, meters, frames, blocks.len(), start);
        PipelineOutput { blocks, report }
    }

    /// Runs the graph sequentially on the calling thread — the software
    /// reference executor. Bit-identical to [`run_threaded`](Self::run_threaded)
    /// because it drives the same stages over the same integer datapath.
    pub fn run_inline(mut self) -> PipelineOutput {
        assert!(!self.stages.is_empty(), "pipeline has no stages");
        let start = Instant::now();
        let mut stages = std::mem::take(&mut self.stages);
        let mut meters: Vec<StageMeter> = std::iter::once(StageMeter::new("source"))
            .chain(stages.iter().map(|s| StageMeter::new(s.name())))
            .collect();

        let mut blocks = Vec::new();
        let frames = self.source.frames();
        for i in 0..frames {
            let t = Instant::now();
            let packet = {
                let _sp = ims_obs::span_cat("source", "process");
                self.source.packet(i)
            };
            let gen = t.elapsed();
            meters[0].busy += gen;
            meters[0].record_latency(gen);
            meters[0].items_out += 1;
            feed(
                &mut stages,
                &mut meters[1..],
                0,
                Message::Frame(packet),
                &mut blocks,
            );
        }
        for i in 0..stages.len() {
            let mut emitted = Vec::new();
            stages[i].flush(&mut |m| emitted.push(m));
            meters[i + 1].items_out += emitted.len() as u64;
            for m in emitted {
                feed(&mut stages, &mut meters[1..], i + 1, m, &mut blocks);
            }
        }

        let mut report = PipelineReport::new("inline");
        report.channel_depth = self.channel_depth;
        self.finish_report(&mut report, stages, meters, frames, blocks.len(), start);
        PipelineOutput { blocks, report }
    }

    fn finish_report(
        &self,
        report: &mut PipelineReport,
        mut stages: Vec<Box<dyn Stage>>,
        meters: Vec<StageMeter>,
        frames: u64,
        blocks: usize,
        start: Instant,
    ) {
        report.frames = frames;
        report.blocks = blocks as u64;
        let threaded = report.executor == "threaded";
        report.stages = meters
            .into_iter()
            .map(|m| m.into_report(threaded))
            .collect();
        // Meter 0 is the source; stage i owns report.stages[i + 1].
        for (i, stage) in stages.iter().enumerate() {
            report.stages[i + 1].cells = stage.cells_processed();
        }
        for s in &mut report.stages {
            if s.busy_seconds > 0.0 {
                s.items_per_second = s.items_out as f64 / s.busy_seconds;
                s.mcells_per_second = s.cells as f64 / s.busy_seconds / 1e6;
            }
        }
        let deconv_rates = report
            .stage("deconvolve")
            .map(|d| (d.items_per_second, d.mcells_per_second));
        if let Some((blocks_per_s, mcells_per_s)) = deconv_rates {
            report.deconv_blocks_per_second = blocks_per_s;
            report.deconv_mcells_per_second = mcells_per_s;
        }
        for stage in &mut stages {
            stage.finalize(report);
        }
        report.wall_seconds = start.elapsed().as_secs_f64();
    }
}

/// Pushes `msg` into stage `idx`, cascading emissions depth-first; messages
/// that fall off the end of the chain are collected as output blocks.
fn feed(
    stages: &mut [Box<dyn Stage>],
    meters: &mut [StageMeter],
    idx: usize,
    msg: Message,
    out: &mut Vec<DeconvolvedBlock>,
) {
    if idx == stages.len() {
        if let Message::Deconvolved(b) = msg {
            out.push(b);
        }
        return;
    }
    meters[idx].items_in += 1;
    let mut emitted = Vec::new();
    let t = Instant::now();
    {
        let _sp = ims_obs::span_cat(meters[idx].name, "process");
        stages[idx].process(msg, &mut |m| emitted.push(m));
    }
    let took = t.elapsed();
    meters[idx].busy += took;
    meters[idx].record_latency(took);
    meters[idx].refresh_cells(stages[idx].as_ref());
    meters[idx].items_out += emitted.len() as u64;
    for m in emitted {
        feed(stages, meters, idx + 1, m, out);
    }
}

/// Accumulates one stage's timing while its thread runs.
struct StageMeter {
    name: &'static str,
    items_in: u64,
    items_out: u64,
    busy: Duration,
    blocked_recv: Duration,
    blocked_send: Duration,
    queue_high_water: u64,
    /// Per-item processing latency for this run (feeds the report).
    latency: ims_obs::Histogram,
    /// Same samples in the global registry (feeds metrics snapshots),
    /// named `pipeline.stage_latency_ns.<stage>`.
    latency_reg: &'static ims_obs::Histogram,
    /// Running item count in the registry (`pipeline.items_total.<stage>`)
    /// — bumped per item so a sampler sees throughput *during* the run,
    /// not just the end-of-run report.
    items_reg: &'static ims_obs::Counter,
    /// Running cell count in the registry (`pipeline.cells_total.<stage>`).
    cells_reg: &'static ims_obs::Counter,
    /// Cells already pushed to `cells_reg` (stages report totals).
    cells_pushed: u64,
}

impl StageMeter {
    fn new(name: &'static str) -> Self {
        Self {
            name,
            items_in: 0,
            items_out: 0,
            busy: Duration::ZERO,
            blocked_recv: Duration::ZERO,
            blocked_send: Duration::ZERO,
            queue_high_water: 0,
            latency: ims_obs::Histogram::new(),
            latency_reg: ims_obs::metrics::histogram(&format!("pipeline.stage_latency_ns.{name}")),
            items_reg: ims_obs::metrics::counter(&format!("pipeline.items_total.{name}")),
            cells_reg: ims_obs::metrics::counter(&format!("pipeline.cells_total.{name}")),
            cells_pushed: 0,
        }
    }

    /// Records one item's processing latency (run-local and registry).
    fn record_latency(&mut self, d: Duration) {
        self.latency.record_duration(d);
        self.latency_reg.record_duration(d);
        self.items_reg.incr();
    }

    /// Pushes the stage's cell-count growth since the last refresh into
    /// the registry, so mid-run samples carry cell throughput.
    fn refresh_cells(&mut self, stage: &dyn Stage) {
        let total = stage.cells_processed();
        self.cells_reg.add(total.saturating_sub(self.cells_pushed));
        self.cells_pushed = total;
    }

    /// Sends one message, charging the wait to `blocked_send`.
    fn timed_send(&mut self, tx: &Sender<Message>, msg: Message) -> Result<(), ()> {
        let t = Instant::now();
        let r = {
            let _sp = ims_obs::span_cat(self.name, "send-wait");
            tx.send(msg)
        };
        self.blocked_send += t.elapsed();
        if r.is_ok() {
            self.items_out += 1;
            Ok(())
        } else {
            Err(())
        }
    }

    /// Runs `process`, splitting elapsed time into busy vs send-blocked.
    fn timed_process(&mut self, stage: &mut dyn Stage, msg: Message, tx: &Sender<Message>) {
        let name = self.name;
        let mut sent = Duration::ZERO;
        let mut items_out = 0u64;
        let t = Instant::now();
        {
            let _sp = ims_obs::span_cat(name, "process");
            stage.process(msg, &mut |m| {
                let ts = Instant::now();
                {
                    let _sp = ims_obs::span_cat(name, "send-wait");
                    let _ = tx.send(m);
                }
                sent += ts.elapsed();
                items_out += 1;
            });
        }
        let total = t.elapsed();
        let busy = total.saturating_sub(sent);
        self.busy += busy;
        self.record_latency(busy);
        self.blocked_send += sent;
        self.items_out += items_out;
    }

    /// Runs `flush` with the same accounting as [`timed_process`].
    fn timed_flush(&mut self, stage: &mut dyn Stage, tx: &Sender<Message>) {
        let name = self.name;
        let mut sent = Duration::ZERO;
        let mut items_out = 0u64;
        let t = Instant::now();
        {
            let _sp = ims_obs::span_cat(name, "flush");
            stage.flush(&mut |m| {
                let ts = Instant::now();
                {
                    let _sp = ims_obs::span_cat(name, "send-wait");
                    let _ = tx.send(m);
                }
                sent += ts.elapsed();
                items_out += 1;
            });
        }
        let total = t.elapsed();
        self.busy += total.saturating_sub(sent);
        self.blocked_send += sent;
        self.items_out += items_out;
    }

    /// Converts to the serializable report. The blocked/queue fields are
    /// only meaningful under the threaded executor; the inline executor
    /// reports them as `None` so JSON consumers can't misread `0` as
    /// "never blocked".
    fn into_report(self, threaded: bool) -> StageReport {
        StageReport {
            name: self.name.to_string(),
            items_in: self.items_in,
            items_out: self.items_out,
            busy_seconds: self.busy.as_secs_f64(),
            blocked_recv_seconds: threaded.then_some(self.blocked_recv.as_secs_f64()),
            blocked_send_seconds: threaded.then_some(self.blocked_send.as_secs_f64()),
            queue_high_water: threaded.then_some(self.queue_high_water),
            latency_ns: (self.latency.count() > 0).then(|| self.latency.summary()),
            cells: 0,
            items_per_second: 0.0,
            mcells_per_second: 0.0,
        }
    }
}
