//! Executors: run a stage graph on the work-stealing scheduler (threaded /
//! scheduled) or inline (sequentially on the calling thread).
//!
//! All executors drive the same [`Stage`] objects in the same order over
//! the same integer datapath, so their outputs are bit-identical by
//! construction. The concurrent executors are thin entry points into
//! [`super::sched`]: [`Pipeline::run_threaded`] (the PR-5 name, kept as a
//! compatibility wrapper) and [`Pipeline::run_scheduled`] both submit the
//! graph to the shared work-stealing pool, where the source and each stage
//! run as cooperatively scheduled tasks connected by bounded inboxes —
//! the back-pressure structure of the real design. [`Pipeline::spawn_on`]
//! submits without waiting, which is what the session multiplexer uses to
//! run many graphs on one pool.
//!
//! Every executor is instrumented with `ims_obs`: stage iterations open
//! spans (category = stage name, or `stage@session` for labeled tenants),
//! input-queue depths are sampled into gauges and Chrome counter tracks,
//! and per-item processing latency feeds a histogram per stage (always
//! on; a handful of relaxed atomics per *item*, where items are frames or
//! blocks).
//!
//! # Supervision
//!
//! The scheduled executors are *supervised*: a panicking stage no longer
//! aborts the process. Each stage iteration runs under `catch_unwind`; a
//! panicked stage turns "poisoned" — it keeps draining its input inbox
//! (so upstream never blocks on a full queue) without processing, its
//! output closes, downstream flushes and drains, and the run returns a
//! partial report carrying a [`PipelineError::StagePanicked`] with stage
//! provenance and a [`RunOutcome::Failed`] verdict.
//!
//! With [`Pipeline::with_supervisor`] and a `stall_timeout`, a watchdog
//! thread additionally polls per-node progress counters; when *nothing*
//! in the graph advances for the timeout, it blames the upstream-most
//! unfinished stage, cancels any injected stall (see
//! [`Pipeline::with_faults`]) so the graph drains, and records a
//! [`PipelineError::StageStalled`].
//!
//! With no supervisor config and no injector, none of this costs anything
//! on the hot path: no watchdog thread is spawned, packets carry no
//! checksums, and the only addition is one relaxed atomic add per item.

use super::error::{PipelineError, RunOutcome, SupervisorConfig};
use super::report::{PipelineReport, StageReport};
use super::sched::{self, ScheduledRun, Scheduler};
use super::stages::FrameSource;
use super::{flight_event, DeconvolvedBlock, Message, ObsTap, Stage};
use crate::fault::FaultInjector;
use ims_obs::FlightRecorder;
use std::time::{Duration, Instant};

/// Ring shards the per-run flight recorder keeps (threads hash onto
/// shards by a stable per-thread ordinal).
const FLIGHT_SHARDS: usize = 8;
/// Events each shard retains (the "last N events per worker" of a
/// black-box dump; older events are overwritten).
const FLIGHT_CAPACITY: usize = 1024;

/// The always-on flight-recorder wiring of one pipeline run: the shared
/// ring recorder, the per-node label indices (filled at arm time, in
/// pipeline order), and the dump/SLO configuration.
pub(super) struct FlightConfig {
    pub(super) recorder: FlightRecorder,
    /// Label index per node: `labels[0]` is the source, `labels[i + 1]`
    /// stage `i`. Filled by [`Pipeline::arm`].
    pub(super) labels: Vec<u16>,
    /// Where to write `flight_<fingerprint>.jsonl` when the run ends
    /// badly; `None` records to the rings but never touches disk.
    pub(super) dump_dir: Option<std::path::PathBuf>,
    /// Config fingerprint stamped into the dump header and file name.
    pub(super) fingerprint: String,
    /// End-to-end frame-latency target (ns) from the armed SLO spec.
    pub(super) latency_slo_ns: Option<u64>,
}

impl Default for FlightConfig {
    fn default() -> Self {
        Self {
            recorder: FlightRecorder::new(FLIGHT_SHARDS, FLIGHT_CAPACITY),
            labels: Vec::new(),
            dump_dir: None,
            fingerprint: "run".to_string(),
            latency_slo_ns: None,
        }
    }
}

/// A source plus an ordered chain of stages, ready to run.
pub struct Pipeline {
    pub(super) source: FrameSource,
    pub(super) stages: Vec<Box<dyn Stage>>,
    pub(super) channel_depth: usize,
    pub(super) injector: Option<FaultInjector>,
    pub(super) supervisor: SupervisorConfig,
    /// Interned session label (`s17`) of a multiplexed tenant; `None` for
    /// single-session runs, whose metric names stay unsuffixed.
    pub(super) session: Option<&'static str>,
    /// Flight-recorder + SLO wiring (always on; dumps are opt-in).
    pub(super) flight: FlightConfig,
    /// Frame capture log: the source appends every emitted packet, the
    /// accumulate stage rebuilds killed shards from it.
    pub(super) capture: Option<crate::capture::CaptureLog>,
}

/// What a pipeline run returns: the deconvolved blocks (in order) and the
/// instrumentation report (whose [`outcome`](PipelineReport::outcome)
/// says whether the blocks are complete, degraded, or partial).
#[derive(Debug, Clone)]
pub struct PipelineOutput {
    /// Deconvolved blocks, in block order.
    pub blocks: Vec<DeconvolvedBlock>,
    /// Run instrumentation.
    pub report: PipelineReport,
}

impl Pipeline {
    /// Starts a graph from a frame source; `channel_depth` bounds the
    /// frame inboxes of the scheduled executors (back-pressure credits).
    pub fn new(source: FrameSource, channel_depth: usize) -> Self {
        Self {
            source,
            stages: Vec::new(),
            channel_depth: channel_depth.max(1),
            injector: None,
            supervisor: SupervisorConfig::default(),
            session: None,
            flight: FlightConfig::default(),
            capture: None,
        }
    }

    /// Appends a stage to the chain.
    pub fn stage(mut self, stage: impl Stage + 'static) -> Self {
        self.stages.push(Box::new(stage));
        self
    }

    /// Arms deterministic fault injection: the source stamps packets with
    /// integrity checksums and every stage gets a clone of `injector`
    /// (drop/stall at the source, bit-flips at the link, backend failures
    /// at the deconvolve stage). A zero-rate spec injects nothing and the
    /// run stays bit-identical to an unarmed one.
    pub fn with_faults(mut self, injector: FaultInjector) -> Self {
        self.injector = Some(injector);
        self
    }

    /// Sets the supervision/degradation policy (watchdog timeout, corrupt
    /// policy, deconv fallback). The default policy has the watchdog off.
    pub fn with_supervisor(mut self, supervisor: SupervisorConfig) -> Self {
        self.supervisor = supervisor;
        self
    }

    /// Tags this run as session `label` (a multiplexer tenant): stage
    /// meters register under `name#session=<label>` — rendered by the
    /// Prometheus exporter as a `session="…"` label — and spans open
    /// under `stage@label` categories, so concurrent sessions stay
    /// distinguishable on every observability surface. The label is
    /// interned (session sets are small and bounded by admission
    /// control; see the cardinality rules in DESIGN.md).
    pub fn with_session(mut self, label: &str) -> Self {
        self.session = Some(ims_obs::intern(label));
        self
    }

    /// Attaches a frame capture log: the source appends every packet it
    /// emits (pristine, pre-corruption), and the accumulate stage rebuilds
    /// `shard.kill`-lost shards from it. The same log directory later
    /// powers `--replay`. A read-only handle (from
    /// [`CaptureLog::open`](crate::capture::CaptureLog::open)) appends
    /// nothing but still serves rebuild reads — the replay wiring.
    pub fn with_capture_log(mut self, log: crate::capture::CaptureLog) -> Self {
        self.capture = Some(log);
        self
    }

    /// Replaces the source's generator with pre-captured packets: the run
    /// replays `packets` in order, bit-exactly reproducing the captured
    /// run's output (source-site faults must be stripped by the caller —
    /// see [`FaultSpec::without_source_sites`](crate::fault::FaultSpec::without_source_sites)).
    pub fn with_replay_source(mut self, packets: Vec<ims_fpga::dma::FramePacket>) -> Self {
        self.source.set_replay(std::sync::Arc::new(packets));
        self
    }

    /// Arms a black-box dump: when the run ends `Degraded` or `Failed`
    /// (stage panic, watchdog stall, quarantine, injected faults), the
    /// executor writes the flight-recorder rings to
    /// `dir/flight_<fingerprint>.jsonl` — last N events per worker, the
    /// blamed stage, and per-frame causal chains. Recording itself is
    /// always on; this only enables the dump.
    pub fn with_flight_dump(
        mut self,
        dir: impl Into<std::path::PathBuf>,
        fingerprint: &str,
    ) -> Self {
        self.flight.dump_dir = Some(dir.into());
        self.flight.fingerprint = fingerprint.to_string();
        self
    }

    /// Declares the end-to-end frame-latency target (ns): frames whose
    /// origin-to-accumulation latency exceeds it are counted in
    /// [`PipelineReport::frames_over_latency_slo`], which the SLO engine
    /// turns into p99 burn rates.
    pub fn with_latency_slo(mut self, target_ns: u64) -> Self {
        self.flight.latency_slo_ns = Some(target_ns);
        self
    }

    /// Distributes the injector, policy, and flight-recorder taps to the
    /// source and stages. Flight labels register in pipeline order
    /// (source, then stages, then — via the injector — fault sites), so
    /// label indices are deterministic for a given graph shape.
    pub(super) fn arm(&mut self) {
        let rec = self.flight.recorder.clone();
        let mut labels = vec![rec.register("source")];
        for stage in &self.stages {
            labels.push(rec.register(stage.name()));
        }
        if let Some(inj) = &self.injector {
            self.source.set_checked(true);
            for stage in &mut self.stages {
                stage.arm_faults(inj, &self.supervisor);
            }
            inj.arm_flight(&rec);
        }
        if let Some(log) = &self.capture {
            self.source.set_capture(log.clone());
            for stage in &mut self.stages {
                stage.arm_capture(log);
            }
        }
        let e2e_name = match self.session {
            Some(s) => format!("pipeline.frame_e2e_ns#session={s}"),
            None => "pipeline.frame_e2e_ns".to_string(),
        };
        let e2e_hist = ims_obs::metrics::histogram(&e2e_name);
        for (stage, &label) in self.stages.iter_mut().zip(labels[1..].iter()) {
            stage.arm_obs(&ObsTap {
                recorder: rec.clone(),
                label,
                latency_slo_ns: self.flight.latency_slo_ns,
                e2e_hist,
                session: self.session,
            });
        }
        self.flight.labels = labels;
    }

    /// Runs the graph concurrently — source and stages as tasks on the
    /// shared work-stealing pool, connected by bounded inboxes of depth
    /// `channel_depth` (frames) or the stages' own depth (blocks: 2, the
    /// double-buffered readout). Supervised: see the module docs.
    ///
    /// This is the PR-5 entry point; since the scheduler refactor it is a
    /// thin wrapper over [`run_scheduled`](Self::run_scheduled) that only
    /// keeps the `"threaded"` executor tag in reports stable for existing
    /// consumers.
    pub fn run_threaded(self) -> PipelineOutput {
        sched::spawn(self, Scheduler::global(), "threaded").join()
    }

    /// Runs the graph on the shared work-stealing pool and waits for it
    /// to drain. Identical to [`run_threaded`](Self::run_threaded) except
    /// for the `"scheduled"` executor tag in the report.
    pub fn run_scheduled(self) -> PipelineOutput {
        sched::spawn(self, Scheduler::global(), "scheduled").join()
    }

    /// Submits the graph to `sched` and returns immediately; the session
    /// multiplexer uses this to run many tenant graphs concurrently on
    /// one pool. Join the returned handle for the [`PipelineOutput`].
    pub fn spawn_on(self, sched: &Scheduler) -> ScheduledRun {
        sched::spawn(self, sched, "scheduled")
    }

    /// Runs the graph sequentially on the calling thread — the software
    /// reference executor. Bit-identical to [`run_threaded`](Self::run_threaded)
    /// because it drives the same stages over the same integer datapath.
    /// Fault injection works here too (same deterministic decisions, since
    /// they depend only on `(seed, site, index)`), but supervision does
    /// not: the inline executor is the *reference*, so a stage panic
    /// propagates and no watchdog runs.
    pub fn run_inline(mut self) -> PipelineOutput {
        assert!(!self.stages.is_empty(), "pipeline has no stages");
        self.arm();
        let start = Instant::now();
        let injector = self.injector.clone();
        let mut stages = std::mem::take(&mut self.stages);
        let mut meters: Vec<StageMeter> = std::iter::once(StageMeter::new("source"))
            .chain(stages.iter().map(|s| StageMeter::new(s.name())))
            .collect();
        for (meter, &label) in meters.iter_mut().zip(&self.flight.labels) {
            meter.flight = Some((self.flight.recorder.clone(), label));
        }

        let mut blocks = Vec::new();
        let frames = self.source.frames();
        for i in 0..frames {
            if let Some(inj) = &injector {
                if let Some(stall) = inj.stall_duration(i) {
                    if !inj.stall(stall) {
                        break;
                    }
                }
                if inj.drop_frame(i) {
                    continue;
                }
            }
            let t = Instant::now();
            let packet = {
                let _sp = ims_obs::span_cat("source", "process");
                self.source.packet(i)
            };
            let gen = t.elapsed();
            meters[0].busy += gen;
            meters[0].record_latency(gen);
            meters[0].items_out += 1;
            meters[0].record_flight(ims_obs::FlightKind::FrameEgress, packet.seq_no);
            feed(
                &mut stages,
                &mut meters[1..],
                0,
                Message::Frame(packet),
                &mut blocks,
            );
        }
        for i in 0..stages.len() {
            let mut emitted = Vec::new();
            stages[i].flush(&mut |m| emitted.push(m));
            meters[i + 1].items_out += emitted.len() as u64;
            for m in emitted {
                feed(&mut stages, &mut meters[1..], i + 1, m, &mut blocks);
            }
        }

        let mut report = PipelineReport::new("inline");
        report.channel_depth = self.channel_depth;
        finish_report(
            &mut report,
            stages,
            meters,
            frames,
            blocks.len(),
            start,
            self.injector.as_ref(),
        );
        maybe_dump_flight(&mut report, &self.flight, self.session);
        PipelineOutput { blocks, report }
    }
}

/// Writes the black-box dump when a run ended badly and a dump directory
/// was armed. The blamed stage comes from the first fatal error (panic or
/// watchdog verdict); degraded-but-error-free runs leave blame to the
/// recorder's own heuristics (most quarantines, else hottest fault site).
/// Records the dump path into the report; a failed write is counted and
/// warned, never fatal — the black box must not take the run down.
pub(super) fn maybe_dump_flight(
    report: &mut PipelineReport,
    flight: &FlightConfig,
    session: Option<&'static str>,
) {
    if report.outcome == RunOutcome::Completed {
        return;
    }
    let Some(dir) = &flight.dump_dir else { return };
    let first = report.errors.first();
    let blamed_stage = first.map(|e| match e {
        PipelineError::StagePanicked { stage, .. } | PipelineError::StageStalled { stage, .. } => {
            stage.clone()
        }
    });
    let reason = match first {
        Some(PipelineError::StageStalled { .. }) => "watchdog_stall",
        Some(PipelineError::StagePanicked { .. }) => "stage_panic",
        None if report.shards_lost > 0 => "shard_loss",
        None if report.frames_quarantined > 0 => "quarantine",
        None => "degraded_run",
    };
    let meta = ims_obs::flight::DumpMeta {
        fingerprint: flight.fingerprint.clone(),
        session: session.map(str::to_string),
        outcome: report.outcome.as_str().to_string(),
        reason: reason.to_string(),
        blamed_stage,
    };
    match flight.recorder.write_dump(dir, &meta) {
        Ok(path) => {
            ims_obs::static_counter!("flight.dumps_written").incr();
            report.flight_dump = Some(path.display().to_string());
        }
        Err(err) => {
            ims_obs::static_counter!("flight.dump_failed").incr();
            eprintln!(
                "warning: failed to write flight dump to {}: {err}",
                dir.display()
            );
        }
    }
}

/// Fills in the tail of a run report shared by every executor: per-stage
/// reports from the meters, derived rates, stage finalizers, fault
/// counts, the outcome verdict, and wall time.
pub(super) fn finish_report(
    report: &mut PipelineReport,
    mut stages: Vec<Box<dyn Stage>>,
    meters: Vec<StageMeter>,
    frames: u64,
    blocks: usize,
    start: Instant,
    injector: Option<&FaultInjector>,
) {
    report.frames = frames;
    report.blocks = blocks as u64;
    let concurrent = report.executor != "inline";
    report.stages = meters
        .into_iter()
        .map(|m| m.into_report(concurrent))
        .collect();
    // Meter 0 is the source; stage i owns report.stages[i + 1].
    for (i, stage) in stages.iter().enumerate() {
        report.stages[i + 1].cells = stage.cells_processed();
    }
    for s in &mut report.stages {
        if s.busy_seconds > 0.0 {
            s.items_per_second = s.items_out as f64 / s.busy_seconds;
            s.mcells_per_second = s.cells as f64 / s.busy_seconds / 1e6;
        }
    }
    let deconv_rates = report
        .stage("deconvolve")
        .map(|d| (d.items_per_second, d.mcells_per_second));
    if let Some((blocks_per_s, mcells_per_s)) = deconv_rates {
        report.deconv_blocks_per_second = blocks_per_s;
        report.deconv_mcells_per_second = mcells_per_s;
    }
    for stage in &mut stages {
        stage.finalize(report);
    }
    report.faults = injector.map(|inj| inj.counts()).unwrap_or_default();
    // The verdict. Fatal errors trump everything; otherwise any fault or
    // loss downgrades a Completed run to Degraded. Shard kills are the
    // exception: a kill rebuilt from the capture log is fully recovered
    // (bit-identical output), so only kills that drained *lost* degrade.
    report.outcome = if !report.errors.is_empty() {
        RunOutcome::Failed
    } else if report.faults.degrading() > 0
        || report.frames_quarantined > 0
        || report.deconv_fallbacks > 0
        || report.shards_lost > 0
    {
        RunOutcome::Degraded
    } else {
        RunOutcome::Completed
    };
    report.wall_seconds = start.elapsed().as_secs_f64();
}

/// Renders a caught panic payload as text (panics carry `&str` or
/// `String` in practice; anything else gets a placeholder).
pub(super) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Pushes `msg` into stage `idx`, cascading emissions depth-first; messages
/// that fall off the end of the chain are collected as output blocks.
fn feed(
    stages: &mut [Box<dyn Stage>],
    meters: &mut [StageMeter],
    idx: usize,
    msg: Message,
    out: &mut Vec<DeconvolvedBlock>,
) {
    if idx == stages.len() {
        if let Message::Deconvolved(b) = msg {
            out.push(b);
        }
        return;
    }
    meters[idx].items_in += 1;
    let (kind, item) = flight_event(&msg, false);
    meters[idx].record_flight(kind, item);
    let mut emitted = Vec::new();
    let t = Instant::now();
    {
        let _sp = ims_obs::span_cat(meters[idx].name, "process");
        stages[idx].process(msg, &mut |m| emitted.push(m));
    }
    let took = t.elapsed();
    meters[idx].busy += took;
    meters[idx].record_latency(took);
    meters[idx].refresh_cells(stages[idx].as_ref());
    meters[idx].items_out += emitted.len() as u64;
    for m in emitted {
        let (kind, item) = flight_event(&m, true);
        meters[idx].record_flight(kind, item);
        feed(stages, meters, idx + 1, m, out);
    }
}

/// Accumulates one stage's timing while its task runs.
pub(super) struct StageMeter {
    pub(super) name: &'static str,
    pub(super) items_in: u64,
    pub(super) items_out: u64,
    pub(super) busy: Duration,
    pub(super) blocked_recv: Duration,
    pub(super) blocked_send: Duration,
    pub(super) queue_high_water: u64,
    /// Per-item processing latency for this run (feeds the report).
    latency: ims_obs::Histogram,
    /// Same samples in the global registry (feeds metrics snapshots),
    /// named `pipeline.stage_latency_ns.<stage>` — with a
    /// `#session=<label>` suffix for multiplexer tenants, which the
    /// Prometheus exporter renders as a `session` label.
    latency_reg: &'static ims_obs::Histogram,
    /// Running item count in the registry (`pipeline.items_total.<stage>`)
    /// — bumped per item so a sampler sees throughput *during* the run,
    /// not just the end-of-run report.
    items_reg: &'static ims_obs::Counter,
    /// Running cell count in the registry (`pipeline.cells_total.<stage>`).
    cells_reg: &'static ims_obs::Counter,
    /// Cells already pushed to `cells_reg` (stages report totals).
    cells_pushed: u64,
    /// This node's tap into the run's flight recorder: the shared rings
    /// plus the node's label index. `None` only for meters built outside
    /// an armed pipeline (e.g. unit tests driving a meter directly).
    pub(super) flight: Option<(FlightRecorder, u16)>,
}

impl StageMeter {
    pub(super) fn new(name: &'static str) -> Self {
        Self::with_session(name, None)
    }

    /// A meter whose registry series carry the session's label suffix
    /// (none for single-session runs, keeping the PR-4 metric names
    /// byte-stable).
    pub(super) fn with_session(name: &'static str, session: Option<&'static str>) -> Self {
        Self {
            name,
            items_in: 0,
            items_out: 0,
            busy: Duration::ZERO,
            blocked_recv: Duration::ZERO,
            blocked_send: Duration::ZERO,
            queue_high_water: 0,
            latency: ims_obs::Histogram::new(),
            latency_reg: ims_obs::metrics::histogram(&Self::metric_name(
                "pipeline.stage_latency_ns",
                name,
                session,
            )),
            items_reg: ims_obs::metrics::counter(&Self::metric_name(
                "pipeline.items_total",
                name,
                session,
            )),
            cells_reg: ims_obs::metrics::counter(&Self::metric_name(
                "pipeline.cells_total",
                name,
                session,
            )),
            cells_pushed: 0,
            flight: None,
        }
    }

    /// Records one ingress/egress event for this node into the run's
    /// flight recorder (no-op for meters without a tap).
    #[inline]
    pub(super) fn record_flight(&self, kind: ims_obs::FlightKind, item: u64) {
        if let Some((rec, label)) = &self.flight {
            rec.record(*label, kind, item);
        }
    }

    /// [`record_flight`](Self::record_flight) with an explicit timestamp.
    /// The concurrent executors stamp egress *before* offering the message
    /// downstream, so an egress timestamp always precedes the matching
    /// downstream ingress — the invariant that keeps causal chains (which
    /// sort by timestamp) deterministic across runs.
    #[inline]
    pub(super) fn record_flight_at(&self, kind: ims_obs::FlightKind, item: u64, ts_ns: u64) {
        if let Some((rec, label)) = &self.flight {
            rec.record_at(*label, kind, item, ts_ns);
        }
    }

    /// `prefix.stage`, plus the `#session=<label>` suffix the exporter
    /// turns into a Prometheus label when the run belongs to a session.
    pub(super) fn metric_name(prefix: &str, stage: &str, session: Option<&'static str>) -> String {
        match session {
            Some(s) => format!("{prefix}.{stage}#session={s}"),
            None => format!("{prefix}.{stage}"),
        }
    }

    /// Records one item's processing latency (run-local and registry).
    pub(super) fn record_latency(&mut self, d: Duration) {
        self.latency.record_duration(d);
        self.latency_reg.record_duration(d);
        self.items_reg.incr();
    }

    /// Pushes the stage's cell-count growth since the last refresh into
    /// the registry, so mid-run samples carry cell throughput.
    pub(super) fn refresh_cells(&mut self, stage: &dyn Stage) {
        let total = stage.cells_processed();
        self.cells_reg.add(total.saturating_sub(self.cells_pushed));
        self.cells_pushed = total;
    }

    /// Converts to the serializable report. The blocked/queue fields are
    /// only meaningful under the concurrent executors; the inline
    /// executor reports them as `None` so JSON consumers can't misread
    /// `0` as "never blocked".
    fn into_report(self, concurrent: bool) -> StageReport {
        StageReport {
            name: self.name.to_string(),
            items_in: self.items_in,
            items_out: self.items_out,
            busy_seconds: self.busy.as_secs_f64(),
            blocked_recv_seconds: concurrent.then_some(self.blocked_recv.as_secs_f64()),
            blocked_send_seconds: concurrent.then_some(self.blocked_send.as_secs_f64()),
            queue_high_water: concurrent.then_some(self.queue_high_water),
            latency_ns: (self.latency.count() > 0).then(|| self.latency.summary()),
            cells: 0,
            items_per_second: 0.0,
            mcells_per_second: 0.0,
        }
    }
}
