//! Executors: run a stage graph threaded (bounded channels, one thread per
//! stage) or inline (sequentially on the calling thread).
//!
//! Both executors drive the same [`Stage`] objects in the same order over
//! the same integer datapath, so their outputs are bit-identical by
//! construction; the threaded executor adds the concurrency — and the
//! back-pressure instrumentation — of the real design.
//!
//! Both executors are also instrumented with `ims_obs`: every stage
//! iteration opens a span (category = stage name), channel waits get their
//! own `recv-wait`/`send-wait` spans, and input-queue depths are sampled
//! into gauges and Chrome counter tracks. All of it is inert — one atomic
//! load per span — unless a `TraceSession` is active. Per-item processing
//! latency additionally feeds a histogram per stage (always on; a handful
//! of relaxed atomics per *item*, where items are frames or blocks).
//!
//! # Supervision
//!
//! The threaded executor is *supervised*: a panicking stage no longer
//! aborts the process. Each stage iteration runs under `catch_unwind`; a
//! panicked stage turns "poisoned" — it keeps draining its input channel
//! (so upstream never blocks on a full channel) without processing, its
//! output closes, downstream flushes and drains, and the run returns a
//! partial report carrying a [`PipelineError::StagePanicked`] with stage
//! provenance and a [`RunOutcome::Failed`] verdict.
//!
//! With [`Pipeline::with_supervisor`] and a `stall_timeout`, a watchdog
//! thread additionally polls per-stage progress counters; when *nothing*
//! in the graph advances for the timeout, it blames the upstream-most
//! unfinished stage, cancels any injected stall (see
//! [`Pipeline::with_faults`]) so the graph drains, and records a
//! [`PipelineError::StageStalled`]. The watchdog can break injected
//! stalls and the source loop; a stage genuinely wedged *inside* a
//! blocking channel operation is detected and reported but cannot be
//! interrupted (the vendored channels have no timed operations) — the
//! timeout must exceed the slowest single-item processing time.
//!
//! With no supervisor config and no injector, none of this costs anything
//! on the hot path: no watchdog thread is spawned, packets carry no
//! checksums, and the only addition is one relaxed atomic add per item.

use super::error::{PipelineError, RunOutcome, SupervisorConfig};
use super::report::{PipelineReport, StageReport};
use super::stages::FrameSource;
use super::{DeconvolvedBlock, Message, Stage};
use crate::fault::FaultInjector;
use crossbeam::channel::{bounded, Receiver, Sender};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A source plus an ordered chain of stages, ready to run.
pub struct Pipeline {
    source: FrameSource,
    stages: Vec<Box<dyn Stage>>,
    channel_depth: usize,
    injector: Option<FaultInjector>,
    supervisor: SupervisorConfig,
}

/// What a pipeline run returns: the deconvolved blocks (in order) and the
/// instrumentation report (whose [`outcome`](PipelineReport::outcome)
/// says whether the blocks are complete, degraded, or partial).
#[derive(Debug, Clone)]
pub struct PipelineOutput {
    /// Deconvolved blocks, in block order.
    pub blocks: Vec<DeconvolvedBlock>,
    /// Run instrumentation.
    pub report: PipelineReport,
}

impl Pipeline {
    /// Starts a graph from a frame source; `channel_depth` bounds the
    /// frame channels of the threaded executor (back-pressure).
    pub fn new(source: FrameSource, channel_depth: usize) -> Self {
        Self {
            source,
            stages: Vec::new(),
            channel_depth: channel_depth.max(1),
            injector: None,
            supervisor: SupervisorConfig::default(),
        }
    }

    /// Appends a stage to the chain.
    pub fn stage(mut self, stage: impl Stage + 'static) -> Self {
        self.stages.push(Box::new(stage));
        self
    }

    /// Arms deterministic fault injection: the source stamps packets with
    /// integrity checksums and every stage gets a clone of `injector`
    /// (drop/stall at the source, bit-flips at the link, backend failures
    /// at the deconvolve stage). A zero-rate spec injects nothing and the
    /// run stays bit-identical to an unarmed one.
    pub fn with_faults(mut self, injector: FaultInjector) -> Self {
        self.injector = Some(injector);
        self
    }

    /// Sets the supervision/degradation policy (watchdog timeout, corrupt
    /// policy, deconv fallback). The default policy has the watchdog off.
    pub fn with_supervisor(mut self, supervisor: SupervisorConfig) -> Self {
        self.supervisor = supervisor;
        self
    }

    /// Distributes the injector and policy to the source and stages.
    fn arm(&mut self) {
        if let Some(inj) = &self.injector {
            self.source.set_checked(true);
            for stage in &mut self.stages {
                stage.arm_faults(inj, &self.supervisor);
            }
        }
    }

    /// Runs the graph with one thread per stage connected by bounded
    /// channels — the concurrent structure of the paper's design. Frames
    /// flow through channels of depth `channel_depth`; block hand-offs use
    /// the stages' own depth (2, the double-buffered readout). Supervised:
    /// see the module docs.
    pub fn run_threaded(mut self) -> PipelineOutput {
        assert!(!self.stages.is_empty(), "pipeline has no stages");
        self.arm();
        let start = Instant::now();
        let depth = self.channel_depth;
        let n = self.stages.len();

        // Channel i feeds stage i; channel n carries the final output.
        let mut txs: Vec<Sender<Message>> = Vec::with_capacity(n + 1);
        let mut rxs: Vec<Receiver<Message>> = Vec::with_capacity(n + 1);
        let (tx0, rx0) = bounded::<Message>(depth);
        txs.push(tx0);
        rxs.push(rx0);
        for stage in &self.stages {
            let (tx, rx) = bounded::<Message>(stage.output_depth(depth));
            txs.push(tx);
            rxs.push(rx);
        }

        let stages = std::mem::take(&mut self.stages);
        let source = &self.source;
        let frames = source.frames();
        let injector = self.injector.clone();

        // Supervision state: one progress counter and one done flag per
        // thread (index 0 = source), polled by the watchdog; the cancel
        // flag breaks the source loop and any injected stall.
        let progress: Arc<Vec<AtomicU64>> = Arc::new((0..=n).map(|_| AtomicU64::new(0)).collect());
        let done: Arc<Vec<AtomicBool>> =
            Arc::new((0..=n).map(|_| AtomicBool::new(false)).collect());
        let cancel = Arc::new(AtomicBool::new(false));
        let names: Vec<&'static str> = std::iter::once("source")
            .chain(stages.iter().map(|s| s.name()))
            .collect();

        let (blocks, meters, stages, mut errors) = std::thread::scope(|scope| {
            let mut tx_iter = txs.into_iter();
            let mut rx_iter = rxs.into_iter();

            // Source thread: the "software portion streaming data".
            let src_tx = tx_iter.next().expect("source channel");
            let src_injector = injector.clone();
            let src_progress = progress.clone();
            let src_done = done.clone();
            let src_cancel = cancel.clone();
            let src_handle = scope.spawn(move || {
                ims_obs::set_thread_name("source");
                let mut meter = StageMeter::new("source");
                let panic_msg = catch_unwind(AssertUnwindSafe(|| {
                    for i in 0..frames {
                        if src_cancel.load(Relaxed) {
                            break; // watchdog fired: stop producing, drain
                        }
                        if let Some(inj) = &src_injector {
                            if let Some(stall) = inj.stall_duration(i) {
                                if !inj.stall(stall) {
                                    break; // stall cancelled mid-sleep
                                }
                            }
                            if inj.drop_frame(i) {
                                src_progress[0].fetch_add(1, Relaxed);
                                continue;
                            }
                        }
                        let t = Instant::now();
                        let packet = {
                            let _sp = ims_obs::span_cat("source", "process");
                            source.packet(i)
                        };
                        let gen = t.elapsed();
                        meter.busy += gen;
                        meter.record_latency(gen);
                        if meter.timed_send(&src_tx, Message::Frame(packet)).is_err() {
                            break; // downstream gone
                        }
                        src_progress[0].fetch_add(1, Relaxed);
                    }
                }))
                .err()
                .map(panic_message);
                src_done[0].store(true, Relaxed);
                (meter, panic_msg)
            });

            // One thread per stage, each iteration supervised: a panic
            // poisons the stage instead of tearing down the scope.
            let mut handles = Vec::with_capacity(stages.len());
            for (i, mut stage) in stages.into_iter().enumerate() {
                let rx = rx_iter.next().expect("stage input channel");
                let tx = tx_iter.next().expect("stage output channel");
                let stage_progress = progress.clone();
                let stage_done = done.clone();
                handles.push(scope.spawn(move || {
                    let name = stage.name();
                    ims_obs::set_thread_name(name);
                    let queue_gauge =
                        ims_obs::metrics::gauge(&format!("pipeline.queue_depth.{name}"));
                    let mut meter = StageMeter::new(name);
                    let mut poisoned: Option<String> = None;
                    loop {
                        let depth = rx.len() as u64;
                        meter.queue_high_water = meter.queue_high_water.max(depth);
                        queue_gauge.set(depth);
                        ims_obs::counter_sample("queue-depth", name, depth as f64);
                        let t = Instant::now();
                        let msg = {
                            let _sp = ims_obs::span_cat(name, "recv-wait");
                            rx.recv()
                        };
                        meter.blocked_recv += t.elapsed();
                        let Ok(msg) = msg else { break };
                        meter.items_in += 1;
                        if poisoned.is_some() {
                            // Drain-only mode: keep consuming so upstream
                            // never blocks on a full channel, but process
                            // nothing — the stage's state is suspect.
                            stage_progress[i + 1].fetch_add(1, Relaxed);
                            continue;
                        }
                        let caught = catch_unwind(AssertUnwindSafe(|| {
                            meter.timed_process(stage.as_mut(), msg, &tx)
                        }));
                        match caught {
                            Ok(()) => meter.refresh_cells(stage.as_ref()),
                            Err(p) => poisoned = Some(panic_message(p)),
                        }
                        stage_progress[i + 1].fetch_add(1, Relaxed);
                    }
                    if poisoned.is_none() {
                        let caught = catch_unwind(AssertUnwindSafe(|| {
                            meter.timed_flush(stage.as_mut(), &tx)
                        }));
                        match caught {
                            Ok(()) => meter.refresh_cells(stage.as_ref()),
                            Err(p) => poisoned = Some(panic_message(p)),
                        }
                    }
                    stage_done[i + 1].store(true, Relaxed);
                    drop(tx);
                    (stage, meter, poisoned)
                }));
            }

            // Watchdog (only when configured): polls the progress counters
            // and declares a stall when nothing advances for the timeout.
            let (stop_tx, stop_rx) = std::sync::mpsc::channel::<()>();
            let watchdog = self.supervisor.stall_timeout.map(|timeout| {
                let wd_progress = progress.clone();
                let wd_done = done.clone();
                let wd_cancel = cancel.clone();
                let wd_injector = injector.clone();
                let wd_names: Vec<String> = names.iter().map(|s| s.to_string()).collect();
                scope.spawn(move || -> Option<PipelineError> {
                    ims_obs::set_thread_name("watchdog");
                    let tick = (timeout / 4).max(Duration::from_millis(5)).min(timeout);
                    let mut last: Vec<u64> = wd_progress.iter().map(|p| p.load(Relaxed)).collect();
                    let mut idle = Duration::ZERO;
                    loop {
                        match stop_rx.recv_timeout(tick) {
                            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {}
                            _ => return None, // run finished first
                        }
                        if wd_done.iter().all(|d| d.load(Relaxed)) {
                            return None;
                        }
                        let now: Vec<u64> = wd_progress.iter().map(|p| p.load(Relaxed)).collect();
                        if now != last {
                            last = now;
                            idle = Duration::ZERO;
                            continue;
                        }
                        idle += tick;
                        if idle < timeout {
                            continue;
                        }
                        // Stalled: blame the upstream-most unfinished
                        // stage, then break the stall so the graph drains.
                        let blamed = wd_done.iter().position(|d| !d.load(Relaxed)).unwrap_or(0);
                        wd_cancel.store(true, Relaxed);
                        if let Some(inj) = &wd_injector {
                            inj.cancel();
                        }
                        ims_obs::static_counter!("pipeline.watchdog_stalls").incr();
                        ims_obs::instant("fault", "watchdog_stall");
                        return Some(PipelineError::StageStalled {
                            stage: wd_names[blamed].clone(),
                            timeout_ms: timeout.as_millis() as u64,
                        });
                    }
                })
            });

            // This thread is the collector: drain the final channel while
            // the stages run (bounded channels would deadlock otherwise).
            let out_rx = rx_iter.next().expect("output channel");
            let mut blocks = Vec::new();
            for msg in out_rx.iter() {
                if let Message::Deconvolved(b) = msg {
                    blocks.push(b);
                }
            }

            let mut errors: Vec<PipelineError> = Vec::new();
            // The scope guarantees these joins return: every producer has
            // dropped its sender by now (the output channel closed), and a
            // panic inside a thread was converted to a value, not a
            // propagated unwind.
            let (src_meter, src_panic) = src_handle.join().expect("source thread panicked");
            if let Some(message) = src_panic {
                errors.push(PipelineError::StagePanicked {
                    stage: "source".into(),
                    message,
                });
            }
            let mut meters = vec![src_meter];
            let mut stages_back = Vec::with_capacity(handles.len());
            for h in handles {
                let (stage, meter, poisoned) = h.join().expect("stage thread panicked");
                if let Some(message) = poisoned {
                    errors.push(PipelineError::StagePanicked {
                        stage: stage.name().into(),
                        message,
                    });
                }
                meters.push(meter);
                stages_back.push(stage);
            }
            drop(stop_tx); // wake the watchdog so it can exit
            if let Some(wd) = watchdog {
                if let Some(stall) = wd.join().expect("watchdog thread panicked") {
                    errors.push(stall);
                }
            }
            (blocks, meters, stages_back, errors)
        });

        // Keep error order stable for reports: stalls are usually the
        // root cause, panics the symptom — but both are fatal either way.
        errors.sort_by_key(|e| matches!(e, PipelineError::StagePanicked { .. }));

        let mut report = PipelineReport::new("threaded");
        report.channel_depth = depth;
        report.errors = errors;
        self.finish_report(&mut report, stages, meters, frames, blocks.len(), start);
        PipelineOutput { blocks, report }
    }

    /// Runs the graph sequentially on the calling thread — the software
    /// reference executor. Bit-identical to [`run_threaded`](Self::run_threaded)
    /// because it drives the same stages over the same integer datapath.
    /// Fault injection works here too (same deterministic decisions, since
    /// they depend only on `(seed, site, index)`), but supervision does
    /// not: the inline executor is the *reference*, so a stage panic
    /// propagates and no watchdog runs.
    pub fn run_inline(mut self) -> PipelineOutput {
        assert!(!self.stages.is_empty(), "pipeline has no stages");
        self.arm();
        let start = Instant::now();
        let injector = self.injector.clone();
        let mut stages = std::mem::take(&mut self.stages);
        let mut meters: Vec<StageMeter> = std::iter::once(StageMeter::new("source"))
            .chain(stages.iter().map(|s| StageMeter::new(s.name())))
            .collect();

        let mut blocks = Vec::new();
        let frames = self.source.frames();
        for i in 0..frames {
            if let Some(inj) = &injector {
                if let Some(stall) = inj.stall_duration(i) {
                    if !inj.stall(stall) {
                        break;
                    }
                }
                if inj.drop_frame(i) {
                    continue;
                }
            }
            let t = Instant::now();
            let packet = {
                let _sp = ims_obs::span_cat("source", "process");
                self.source.packet(i)
            };
            let gen = t.elapsed();
            meters[0].busy += gen;
            meters[0].record_latency(gen);
            meters[0].items_out += 1;
            feed(
                &mut stages,
                &mut meters[1..],
                0,
                Message::Frame(packet),
                &mut blocks,
            );
        }
        for i in 0..stages.len() {
            let mut emitted = Vec::new();
            stages[i].flush(&mut |m| emitted.push(m));
            meters[i + 1].items_out += emitted.len() as u64;
            for m in emitted {
                feed(&mut stages, &mut meters[1..], i + 1, m, &mut blocks);
            }
        }

        let mut report = PipelineReport::new("inline");
        report.channel_depth = self.channel_depth;
        self.finish_report(&mut report, stages, meters, frames, blocks.len(), start);
        PipelineOutput { blocks, report }
    }

    fn finish_report(
        &self,
        report: &mut PipelineReport,
        mut stages: Vec<Box<dyn Stage>>,
        meters: Vec<StageMeter>,
        frames: u64,
        blocks: usize,
        start: Instant,
    ) {
        report.frames = frames;
        report.blocks = blocks as u64;
        let threaded = report.executor == "threaded";
        report.stages = meters
            .into_iter()
            .map(|m| m.into_report(threaded))
            .collect();
        // Meter 0 is the source; stage i owns report.stages[i + 1].
        for (i, stage) in stages.iter().enumerate() {
            report.stages[i + 1].cells = stage.cells_processed();
        }
        for s in &mut report.stages {
            if s.busy_seconds > 0.0 {
                s.items_per_second = s.items_out as f64 / s.busy_seconds;
                s.mcells_per_second = s.cells as f64 / s.busy_seconds / 1e6;
            }
        }
        let deconv_rates = report
            .stage("deconvolve")
            .map(|d| (d.items_per_second, d.mcells_per_second));
        if let Some((blocks_per_s, mcells_per_s)) = deconv_rates {
            report.deconv_blocks_per_second = blocks_per_s;
            report.deconv_mcells_per_second = mcells_per_s;
        }
        for stage in &mut stages {
            stage.finalize(report);
        }
        report.faults = self
            .injector
            .as_ref()
            .map(|inj| inj.counts())
            .unwrap_or_default();
        // The verdict. Fatal errors trump everything; otherwise any fault
        // or loss downgrades a Completed run to Degraded.
        report.outcome = if !report.errors.is_empty() {
            RunOutcome::Failed
        } else if report.faults.total() > 0
            || report.frames_quarantined > 0
            || report.deconv_fallbacks > 0
        {
            RunOutcome::Degraded
        } else {
            RunOutcome::Completed
        };
        report.wall_seconds = start.elapsed().as_secs_f64();
    }
}

/// Renders a caught panic payload as text (panics carry `&str` or
/// `String` in practice; anything else gets a placeholder).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Pushes `msg` into stage `idx`, cascading emissions depth-first; messages
/// that fall off the end of the chain are collected as output blocks.
fn feed(
    stages: &mut [Box<dyn Stage>],
    meters: &mut [StageMeter],
    idx: usize,
    msg: Message,
    out: &mut Vec<DeconvolvedBlock>,
) {
    if idx == stages.len() {
        if let Message::Deconvolved(b) = msg {
            out.push(b);
        }
        return;
    }
    meters[idx].items_in += 1;
    let mut emitted = Vec::new();
    let t = Instant::now();
    {
        let _sp = ims_obs::span_cat(meters[idx].name, "process");
        stages[idx].process(msg, &mut |m| emitted.push(m));
    }
    let took = t.elapsed();
    meters[idx].busy += took;
    meters[idx].record_latency(took);
    meters[idx].refresh_cells(stages[idx].as_ref());
    meters[idx].items_out += emitted.len() as u64;
    for m in emitted {
        feed(stages, meters, idx + 1, m, out);
    }
}

/// Accumulates one stage's timing while its thread runs.
struct StageMeter {
    name: &'static str,
    items_in: u64,
    items_out: u64,
    busy: Duration,
    blocked_recv: Duration,
    blocked_send: Duration,
    queue_high_water: u64,
    /// Per-item processing latency for this run (feeds the report).
    latency: ims_obs::Histogram,
    /// Same samples in the global registry (feeds metrics snapshots),
    /// named `pipeline.stage_latency_ns.<stage>`.
    latency_reg: &'static ims_obs::Histogram,
    /// Running item count in the registry (`pipeline.items_total.<stage>`)
    /// — bumped per item so a sampler sees throughput *during* the run,
    /// not just the end-of-run report.
    items_reg: &'static ims_obs::Counter,
    /// Running cell count in the registry (`pipeline.cells_total.<stage>`).
    cells_reg: &'static ims_obs::Counter,
    /// Cells already pushed to `cells_reg` (stages report totals).
    cells_pushed: u64,
}

impl StageMeter {
    fn new(name: &'static str) -> Self {
        Self {
            name,
            items_in: 0,
            items_out: 0,
            busy: Duration::ZERO,
            blocked_recv: Duration::ZERO,
            blocked_send: Duration::ZERO,
            queue_high_water: 0,
            latency: ims_obs::Histogram::new(),
            latency_reg: ims_obs::metrics::histogram(&format!("pipeline.stage_latency_ns.{name}")),
            items_reg: ims_obs::metrics::counter(&format!("pipeline.items_total.{name}")),
            cells_reg: ims_obs::metrics::counter(&format!("pipeline.cells_total.{name}")),
            cells_pushed: 0,
        }
    }

    /// Records one item's processing latency (run-local and registry).
    fn record_latency(&mut self, d: Duration) {
        self.latency.record_duration(d);
        self.latency_reg.record_duration(d);
        self.items_reg.incr();
    }

    /// Pushes the stage's cell-count growth since the last refresh into
    /// the registry, so mid-run samples carry cell throughput.
    fn refresh_cells(&mut self, stage: &dyn Stage) {
        let total = stage.cells_processed();
        self.cells_reg.add(total.saturating_sub(self.cells_pushed));
        self.cells_pushed = total;
    }

    /// Sends one message, charging the wait to `blocked_send`.
    fn timed_send(&mut self, tx: &Sender<Message>, msg: Message) -> Result<(), ()> {
        let t = Instant::now();
        let r = {
            let _sp = ims_obs::span_cat(self.name, "send-wait");
            tx.send(msg)
        };
        self.blocked_send += t.elapsed();
        if r.is_ok() {
            self.items_out += 1;
            Ok(())
        } else {
            Err(())
        }
    }

    /// Runs `process`, splitting elapsed time into busy vs send-blocked.
    fn timed_process(&mut self, stage: &mut dyn Stage, msg: Message, tx: &Sender<Message>) {
        let name = self.name;
        let mut sent = Duration::ZERO;
        let mut items_out = 0u64;
        let t = Instant::now();
        {
            let _sp = ims_obs::span_cat(name, "process");
            stage.process(msg, &mut |m| {
                let ts = Instant::now();
                {
                    let _sp = ims_obs::span_cat(name, "send-wait");
                    let _ = tx.send(m);
                }
                sent += ts.elapsed();
                items_out += 1;
            });
        }
        let total = t.elapsed();
        let busy = total.saturating_sub(sent);
        self.busy += busy;
        self.record_latency(busy);
        self.blocked_send += sent;
        self.items_out += items_out;
    }

    /// Runs `flush` with the same accounting as [`timed_process`].
    fn timed_flush(&mut self, stage: &mut dyn Stage, tx: &Sender<Message>) {
        let name = self.name;
        let mut sent = Duration::ZERO;
        let mut items_out = 0u64;
        let t = Instant::now();
        {
            let _sp = ims_obs::span_cat(name, "flush");
            stage.flush(&mut |m| {
                let ts = Instant::now();
                {
                    let _sp = ims_obs::span_cat(name, "send-wait");
                    let _ = tx.send(m);
                }
                sent += ts.elapsed();
                items_out += 1;
            });
        }
        let total = t.elapsed();
        self.busy += total.saturating_sub(sent);
        self.blocked_send += sent;
        self.items_out += items_out;
    }

    /// Converts to the serializable report. The blocked/queue fields are
    /// only meaningful under the threaded executor; the inline executor
    /// reports them as `None` so JSON consumers can't misread `0` as
    /// "never blocked".
    fn into_report(self, threaded: bool) -> StageReport {
        StageReport {
            name: self.name.to_string(),
            items_in: self.items_in,
            items_out: self.items_out,
            busy_seconds: self.busy.as_secs_f64(),
            blocked_recv_seconds: threaded.then_some(self.blocked_recv.as_secs_f64()),
            blocked_send_seconds: threaded.then_some(self.blocked_send.as_secs_f64()),
            queue_high_water: threaded.then_some(self.queue_high_water),
            latency_ns: (self.latency.count() > 0).then(|| self.latency.summary()),
            cells: 0,
            items_per_second: 0.0,
            mcells_per_second: 0.0,
        }
    }
}
