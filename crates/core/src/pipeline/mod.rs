//! The composable, instrumented pipeline the hybrid runners are built on.
//!
//! The paper's application is a fixed chain — software streams frames to
//! the FPGA, the FPGA captures/accumulates/deconvolves, software collects
//! blocks — that the seed code hand-wired three separate times
//! (`run_hybrid`, `run_hybrid_streaming`, and the software references).
//! This module factors that chain into a typed stage graph:
//!
//! ```text
//! FrameSource ─▶ Link ─▶ [Binner] ─▶ Accumulate ─▶ Deconvolve ─▶ blocks
//!   (frames)    (frames)  (frames)    (blocks)      (deconvolved)
//! ```
//!
//! Stages exchange [`Message`]s. Frame-domain stages map `Frame → Frame`;
//! [`AccumulateStage`] folds frames into [`Block`]s; [`DeconvolveStage`]
//! turns blocks into [`DeconvolvedBlock`]s through a selectable
//! [`DeconvBackend`] (the FWHT FPGA core, the naive MAC-array core, or the
//! scheduler-parallel software path — all bit-exact equals).
//!
//! Three executors run the same graph. [`Pipeline::run_threaded`] and
//! [`Pipeline::run_scheduled`] submit the source and stages as
//! cooperatively scheduled tasks — connected by bounded inboxes — to the
//! shared work-stealing pool in [`sched`] (the concurrent structure of
//! the real design, with back-pressure; the two differ only in the
//! executor tag their reports carry). [`Pipeline::run_inline`] runs the
//! stages sequentially on the calling thread (the software reference).
//! Because all of them drive the same stage objects over the same integer
//! datapath, their outputs agree bit for bit — the property the hybrid
//! equivalence tests pin down.
//!
//! On top of the scheduler sits the [`SessionManager`]: N independent
//! pipelines — each its own seed, config fingerprint, and fault spec —
//! admitted as labeled tenants onto one pool, with bounded admission,
//! per-session credits, and per-session `RunOutcome`s (see [`session`]).
//!
//! Every run also produces a [`PipelineReport`]: per-stage busy vs blocked
//! time, queue high-water marks, cycle totals, and the simulated link time
//! — the numbers that say *where* the pipeline bottlenecks.

mod error;
mod executor;
mod report;
mod sched;
mod session;
mod stages;

pub use error::{CorruptPolicy, PipelineError, RunOutcome, SupervisorConfig};
pub use executor::{Pipeline, PipelineOutput};
pub use report::{PipelineReport, StageReport};
pub use sched::{default_pool_threads, SchedStatsSnapshot, ScheduledRun, Scheduler};
pub use session::{
    output_fingerprint, AdmissionError, SessionConfig, SessionHandle, SessionManager, SessionState,
    SessionStatus,
};
pub use stages::{
    software_deconvolve_block, AccumulateStage, BinnerStage, DeconvBackend, DeconvolveStage,
    FrameSource, LinkStage,
};

use crate::fault::FaultInjector;
use ims_fpga::dma::FramePacket;
use ims_obs::FlightKind;

/// One unit of data flowing between stages.
#[derive(Debug, Clone)]
pub enum Message {
    /// A raw (or binned) instrument frame.
    Frame(FramePacket),
    /// An accumulated block drained from the capture engine.
    Block(Block),
    /// A deconvolved block.
    Deconvolved(DeconvolvedBlock),
}

/// An accumulated drift × m/z block.
#[derive(Debug, Clone)]
pub struct Block {
    /// Block sequence number (0-based).
    pub index: u64,
    /// Frames folded into this block.
    pub frames: u64,
    /// Accumulated counts, drift-major.
    pub data: Vec<u64>,
    /// CSR form of the same counts, attached by the accumulate stage when
    /// the block's cell occupancy fell below the sparse threshold and the
    /// sparse path is enabled. Deconvolution backends that understand it
    /// skip the empty columns (bit-identical output); the dense copy
    /// rides along for the backends — and fault-injection checksums —
    /// that don't.
    pub sparse: Option<ims_fpga::SparseBlock>,
}

/// A deconvolved drift × m/z block (raw fixed-point words).
#[derive(Debug, Clone)]
pub struct DeconvolvedBlock {
    /// Block sequence number (0-based).
    pub index: u64,
    /// Frames folded into this block.
    pub frames: u64,
    /// Deconvolved values, drift-major.
    pub data: Vec<i64>,
}

/// One processing stage in the graph.
///
/// A stage consumes messages one at a time and emits zero or more messages
/// downstream through `emit`. Stages own their FPGA-model cores, so the
/// cycle accounting rides along for free; [`finalize`](Stage::finalize)
/// folds those counters into the run's [`PipelineReport`] after the data
/// has drained.
pub trait Stage: Send {
    /// Stable short name, used in reports.
    fn name(&self) -> &'static str;

    /// Processes one message, emitting any number downstream.
    fn process(&mut self, msg: Message, emit: &mut dyn FnMut(Message));

    /// Called once after the input is exhausted; emits any buffered tail
    /// (e.g. a partial accumulation block).
    fn flush(&mut self, _emit: &mut dyn FnMut(Message)) {}

    /// Folds this stage's counters into the run report.
    fn finalize(&mut self, _report: &mut PipelineReport) {}

    /// Data cells (drift bins × m/z bins) this stage has processed — used
    /// by the executors to derive per-stage throughput. Stages that don't
    /// process 2-D blocks report 0.
    fn cells_processed(&self) -> u64 {
        0
    }

    /// Depth of this stage's *output* channel in the threaded executor.
    ///
    /// Defaults to the pipeline's frame-channel depth; block-producing
    /// stages override it to 2 (the double-buffered "ping-pong" hand-off
    /// of the real design).
    fn output_depth(&self, default: usize) -> usize {
        default
    }

    /// Arms this stage's fault-injection and degradation hooks before a
    /// run starts. Called once per stage by the executor when the
    /// pipeline was built with [`Pipeline::with_faults`]; the default is
    /// a no-op, so fault-oblivious stages need no changes.
    fn arm_faults(&mut self, _injector: &FaultInjector, _supervisor: &SupervisorConfig) {}

    /// Hands this stage a handle to the run's frame capture log. Called
    /// once per stage by the executor when the pipeline was built with
    /// [`Pipeline::with_capture_log`]; the accumulate stage uses it to
    /// rebuild killed shards, everything else ignores it.
    fn arm_capture(&mut self, _log: &crate::capture::CaptureLog) {}

    /// Hands this stage its tap into the run's flight recorder (and the
    /// latency-SLO wiring that rides along). Called once per stage by
    /// every executor before the run starts; the default is a no-op, so
    /// stages with no internal events to record need no changes — the
    /// executors already record ingress/egress for every node.
    fn arm_obs(&mut self, _tap: &ObsTap) {}
}

/// A stage's tap into the run's always-on flight recorder, plus the
/// end-to-end latency-SLO wiring. Built by the executors at arm time and
/// handed to each stage through [`Stage::arm_obs`].
#[derive(Clone)]
pub struct ObsTap {
    pub(crate) recorder: ims_obs::FlightRecorder,
    /// This stage's label index in the recorder (registration order is
    /// pipeline order: source first, then stages, then fault sites).
    pub(crate) label: u16,
    /// End-to-end frame-latency target (ns) from the armed SLO spec;
    /// `None` when no SLO was declared.
    pub(crate) latency_slo_ns: Option<u64>,
    /// Registry histogram for end-to-end frame latency
    /// (`pipeline.frame_e2e_ns`, session-suffixed for tenants).
    pub(crate) e2e_hist: &'static ims_obs::Histogram,
    /// Interned session label of a multiplexed tenant, so stages can emit
    /// per-session registry series (`None` for single-session runs).
    pub(crate) session: Option<&'static str>,
}

impl ObsTap {
    /// Records one event against this stage's label.
    #[inline]
    pub(crate) fn record(&self, kind: FlightKind, item: u64) {
        self.recorder.record(self.label, kind, item);
    }
}

impl std::fmt::Debug for ObsTap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsTap")
            .field("label", &self.label)
            .field("latency_slo_ns", &self.latency_slo_ns)
            .finish_non_exhaustive()
    }
}

/// The flight-recorder classification of a message at a node boundary:
/// `(kind, item id)`. Frames key on `seq_no` (the frame id); blocks —
/// accumulated or deconvolved — on their block index.
pub(super) fn flight_event(msg: &Message, egress: bool) -> (FlightKind, u64) {
    match msg {
        Message::Frame(p) => (
            if egress {
                FlightKind::FrameEgress
            } else {
                FlightKind::FrameIngress
            },
            p.seq_no,
        ),
        Message::Block(b) => (
            if egress {
                FlightKind::BlockEgress
            } else {
                FlightKind::BlockIngress
            },
            b.index,
        ),
        Message::Deconvolved(b) => (
            if egress {
                FlightKind::BlockEgress
            } else {
                FlightKind::BlockIngress
            },
            b.index,
        ),
    }
}
