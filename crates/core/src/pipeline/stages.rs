//! The concrete stages of the hybrid datapath.

use super::error::{CorruptPolicy, SupervisorConfig};
use super::sched::Scheduler;
use super::{Block, DeconvolvedBlock, Message, ObsTap, PipelineReport, Stage};
use crate::capture::CaptureLog;
use crate::fault::FaultInjector;
use crate::hybrid::FrameGenerator;
use ims_fpga::deconv::{DeconvConfig, DeconvCore};
use ims_fpga::deconv_naive::{NaiveConfig, NaiveMacCore};
use ims_fpga::dma::{DmaLink, FramePacket};
use ims_fpga::{AccumulatorCore, MzBinner, ShardedAccumulator};
use ims_prs::MSequence;
use ims_signal::FIXED_POINT_PANEL_WIDTH;
use std::sync::Arc;

/// The head of the graph: generates reproducible raw frames on demand
/// (the instrument's digitiser, frame by frame).
#[derive(Debug, Clone)]
pub struct FrameSource {
    gen: FrameGenerator,
    first_frame: u64,
    frames: u64,
    /// Stamp packets with an FNV-1a payload checksum so downstream stages
    /// can detect in-flight corruption. Off on the default hot path (no
    /// hash is computed); the executor turns it on when faults are armed.
    checked: bool,
    /// When set, the source replays these pre-captured packets instead of
    /// generating frames — `htims pipeline --replay`. Original checksums
    /// ride along, so downstream corruption and quarantine behave exactly
    /// as in the captured run.
    replay: Option<Arc<Vec<FramePacket>>>,
    /// When set, every emitted packet is appended to the capture log
    /// (before any link-stage corruption — the log holds pristine frames).
    capture: Option<CaptureLog>,
}

impl FrameSource {
    /// A source producing frames `first_frame .. first_frame + frames`.
    pub fn new(gen: FrameGenerator, first_frame: u64, frames: u64) -> Self {
        Self {
            gen,
            first_frame,
            frames,
            checked: false,
            replay: None,
            capture: None,
        }
    }

    /// Number of frames this source will emit.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Turns payload checksumming on (the executor arms this together
    /// with the fault injector).
    pub(super) fn set_checked(&mut self, on: bool) {
        self.checked = on;
    }

    /// Switches this source to replaying `packets` (in order), overriding
    /// the generator and frame count.
    pub(super) fn set_replay(&mut self, packets: Arc<Vec<FramePacket>>) {
        self.frames = packets.len() as u64;
        self.replay = Some(packets);
    }

    /// Attaches a capture log; every packet this source emits from here
    /// on is appended to it.
    pub(super) fn set_capture(&mut self, log: CaptureLog) {
        self.capture = Some(log);
    }

    /// The i-th packet (`i < frames`).
    pub(super) fn packet(&self, i: u64) -> FramePacket {
        if let Some(packets) = &self.replay {
            // Re-stamp the origin so end-to-end latency measures this
            // run's packing time, not the captured run's.
            return packets[i as usize]
                .clone()
                .with_origin(ims_obs::trace::now_ns());
        }
        let frame_no = self.first_frame + i;
        let words = self.gen.frame(frame_no);
        let packet = if self.checked {
            FramePacket::from_words_checked(frame_no, &words)
        } else {
            FramePacket::from_words(frame_no, &words)
        };
        if let Some(log) = &self.capture {
            // A failed append must never take the run down: the log is a
            // recovery aid, and a run without one merely degrades harder.
            if let Err(err) = log.append(&packet) {
                ims_obs::static_counter!("capture.append_failed").incr();
                eprintln!("warning: capture-log append failed: {err}");
            }
        }
        packet
    }
}

/// Accounts simulated DMA-link time for every frame that crosses it.
///
/// Pass-through on the data: the link moves bytes, it does not change them.
#[derive(Debug, Clone)]
pub struct LinkStage {
    link: DmaLink,
    seconds: f64,
    /// When armed, the DMA bit-flip fault site: payload bits flip *after*
    /// the source's checksum was taken, so downstream integrity checks
    /// see real corruption.
    injector: Option<FaultInjector>,
}

impl LinkStage {
    /// Wraps a link model.
    pub fn new(link: DmaLink) -> Self {
        Self {
            link,
            seconds: 0.0,
            injector: None,
        }
    }
}

impl Stage for LinkStage {
    fn name(&self) -> &'static str {
        "link"
    }

    fn process(&mut self, mut msg: Message, emit: &mut dyn FnMut(Message)) {
        if let Message::Frame(p) = &mut msg {
            self.seconds += self.link.transfer_time_s(p.len_bytes());
            if let Some(inj) = &self.injector {
                inj.corrupt_packet(p);
            }
        }
        emit(msg);
    }

    fn finalize(&mut self, report: &mut PipelineReport) {
        report.simulated_link_seconds += self.seconds;
    }

    fn arm_faults(&mut self, injector: &FaultInjector, _supervisor: &SupervisorConfig) {
        self.injector = Some(injector.clone());
    }
}

/// The integrity gate run by the first frame-*consuming* stage (the binner
/// when present, else the accumulator): `true` admits the frame (it passed
/// its checksum, or carried none). A corrupted frame is quarantined —
/// counted, traced, dropped — under [`CorruptPolicy::Drop`], or panics the
/// stage (for the supervisor to catch) under [`CorruptPolicy::Fail`].
fn admit_frame(
    p: &FramePacket,
    stage: &'static str,
    policy: CorruptPolicy,
    quarantined: &mut u64,
    obs: &Option<ObsTap>,
) -> bool {
    if p.verify() {
        return true;
    }
    match policy {
        CorruptPolicy::Drop => {
            *quarantined += 1;
            ims_obs::static_counter!("pipeline.frames_quarantined").incr();
            ims_obs::instant("fault", "quarantine");
            if let Some(tap) = obs {
                tap.record(ims_obs::FlightKind::Quarantine, p.seq_no);
            }
            false
        }
        CorruptPolicy::Fail => panic!(
            "frame {} failed its integrity check at stage `{stage}`",
            p.seq_no
        ),
    }
}

/// On-chip m/z binning: folds each fine-resolution frame into a coarse one
/// before it reaches the accumulator (the stage that makes capture fit the
/// FPGA's block RAM — see experiment E4).
#[derive(Debug, Clone)]
pub struct BinnerStage {
    binner: MzBinner,
    drift_bins: usize,
    scratch: Vec<u32>,
    corrupt_policy: CorruptPolicy,
    quarantined: u64,
    obs: Option<ObsTap>,
}

impl BinnerStage {
    /// Wraps a binning core for `drift_bins`-row frames.
    pub fn new(binner: MzBinner, drift_bins: usize) -> Self {
        Self {
            binner,
            drift_bins,
            scratch: Vec::new(),
            corrupt_policy: CorruptPolicy::Drop,
            quarantined: 0,
            obs: None,
        }
    }
}

impl Stage for BinnerStage {
    fn name(&self) -> &'static str {
        "binner"
    }

    fn process(&mut self, msg: Message, emit: &mut dyn FnMut(Message)) {
        match msg {
            Message::Frame(p) => {
                if !admit_frame(
                    &p,
                    "binner",
                    self.corrupt_policy,
                    &mut self.quarantined,
                    &self.obs,
                ) {
                    return;
                }
                // Stream words straight off the wire packet into the reused
                // coarse scratch row — no per-frame allocation on the fine
                // side. The re-packed coarse frame carries no checksum: the
                // binner is the integrity boundary, everything downstream
                // of it is process-local memory. The origin timestamp is
                // carried forward so end-to-end latency still measures
                // from first packing.
                self.binner
                    .bin_frame_into(p.words(), self.drift_bins, &mut self.scratch);
                emit(Message::Frame(
                    FramePacket::from_words(p.seq_no, &self.scratch).with_origin(p.origin_ns),
                ));
            }
            other => emit(other),
        }
    }

    fn finalize(&mut self, report: &mut PipelineReport) {
        report.binner_cycles += self.binner.cycles();
        report.frames_quarantined += self.quarantined;
    }

    fn arm_faults(&mut self, _injector: &FaultInjector, supervisor: &SupervisorConfig) {
        self.corrupt_policy = supervisor.corrupt_policy;
    }

    fn arm_obs(&mut self, tap: &ObsTap) {
        self.obs = Some(tap.clone());
    }
}

/// Capture/accumulation: folds frames into the (sharded) accumulation RAM
/// and drains a [`Block`] every `frames_per_block` frames.
///
/// The accumulator is split into m/z-range shards
/// ([`ShardedAccumulator`]; one shard by default, bit- and
/// cycle-identical to the monolithic engine). Under an armed `shard.kill`
/// fault site, shards can be marked lost mid-block; a lost shard is
/// rebuilt bit-exactly from the frame capture log when one is attached
/// (`shard_rebuilds`), or drains its m/z range zeroed and degrades the
/// run (`shards_lost` + `lost_mz_ranges`) when not.
#[derive(Debug, Clone)]
pub struct AccumulateStage {
    acc: ShardedAccumulator,
    frames_per_block: u64,
    in_block: u64,
    next_index: u64,
    saturation_events: u64,
    flush_remainder: bool,
    corrupt_policy: CorruptPolicy,
    quarantined: u64,
    /// When set, drained blocks below the occupancy threshold carry a
    /// CSR [`ims_fpga::SparseBlock`] for zero-skipping deconvolution.
    sparse_enabled: bool,
    sparse_blocks: u64,
    /// Flight-recorder tap + latency-SLO wiring. The accumulator is the
    /// end-to-end measurement point: a frame "arrives" when it is folded
    /// into the accumulation RAM.
    obs: Option<ObsTap>,
    /// Frames slower end-to-end than the armed SLO's p99 target.
    frames_slow: u64,
    /// When armed, the per-(block, shard) kill site.
    injector: Option<FaultInjector>,
    /// The frame capture log killed shards are rebuilt from.
    capture: Option<CaptureLog>,
    /// The on-chip binner in front of this stage, when there is one:
    /// logged packets hold *raw* frames, so a rebuild must re-bin them
    /// before folding into the (coarse-width) shard.
    rebuild_binner: Option<(MzBinner, usize)>,
    /// Seq-nos of the frames folded into the current block, in fold
    /// order — the rebuild read-set.
    folded: Vec<u64>,
    /// Reused scratch for re-binning logged frames during a rebuild.
    rebuild_scratch: Vec<u32>,
    shard_rebuilds: u64,
    shards_lost: u64,
    lost_ranges: Vec<(usize, usize)>,
}

impl AccumulateStage {
    /// Wraps an accumulator, draining every `frames_per_block` frames.
    ///
    /// With `flush_remainder`, a trailing partial block is drained when the
    /// input ends (and an all-zero block if no frames arrived at all) — the
    /// single-block batch semantics of `run_hybrid`. Without it, a partial
    /// tail is discarded, as a free-running streaming capture would.
    pub fn new(acc: AccumulatorCore, frames_per_block: u64, flush_remainder: bool) -> Self {
        assert!(frames_per_block >= 1, "frames_per_block must be >= 1");
        Self {
            acc: ShardedAccumulator::from_core(acc),
            frames_per_block,
            in_block: 0,
            next_index: 0,
            saturation_events: 0,
            flush_remainder,
            corrupt_policy: CorruptPolicy::Drop,
            quarantined: 0,
            sparse_enabled: false,
            sparse_blocks: 0,
            obs: None,
            frames_slow: 0,
            injector: None,
            capture: None,
            rebuild_binner: None,
            folded: Vec::new(),
            rebuild_scratch: Vec::new(),
            shard_rebuilds: 0,
            shards_lost: 0,
            lost_ranges: Vec::new(),
        }
    }

    /// Enables the sparse drain path: blocks whose cell occupancy is
    /// below [`ims_fpga::SPARSE_OCCUPANCY_THRESHOLD`] carry a CSR
    /// sidecar so downstream deconvolution can skip empty columns.
    /// Output stays bit-identical either way — the sparse path changes
    /// work, never values.
    pub fn with_sparse(mut self, enabled: bool) -> Self {
        self.sparse_enabled = enabled;
        self
    }

    /// Splits the accumulation RAM into `n` m/z-range shards (clamped to
    /// the column count; 1 keeps the monolithic fast path). Discards any
    /// state accumulated so far, so call it at construction time. The
    /// merged output is bit-identical for every shard count — pinned by
    /// the `sharded_properties` proptests.
    pub fn with_shards(mut self, n: usize) -> Self {
        let (drift, mz, bits) = (
            self.acc.drift_bins(),
            self.acc.mz_bins(),
            self.acc.acc_bits(),
        );
        self.acc = ShardedAccumulator::new(drift, mz, bits, n.max(1));
        self
    }

    /// Tells the stage what binning sits between the source and itself:
    /// capture-log packets hold raw source frames, so a shard rebuild
    /// re-bins each logged frame through a clone of the same binner
    /// before folding (`drift_bins` is the fine-side row count).
    pub fn with_rebuild_binner(mut self, binner: Option<MzBinner>, drift_bins: usize) -> Self {
        self.rebuild_binner = binner.map(|b| (b, drift_bins));
        self
    }

    /// Fires the `shard.kill` site for the current block, once, on every
    /// live shard, and immediately attempts recovery: a killed shard is
    /// rebuilt from the capture log (all frames folded into this block so
    /// far — and every later frame folds into it normally again), or
    /// stays lost until drain zeroes its range into the block.
    fn check_shard_kills(&mut self) {
        let Some(inj) = self.injector.clone() else {
            return;
        };
        if inj.spec().shard_kill <= 0.0 {
            return;
        }
        for s in 0..self.acc.shard_count() {
            if self.acc.is_lost(s) || !inj.shard_kill(self.next_index, s as u64) {
                continue;
            }
            self.acc.kill(s);
            match self.rebuild_shard(s) {
                Ok(()) => {
                    self.acc.revive(s);
                    self.shard_rebuilds += 1;
                    ims_obs::static_counter!("accumulator.shard.rebuilds").incr();
                    ims_obs::instant("fault", "shard_rebuild");
                }
                Err(err) => {
                    // Discard any partial rebuild; the shard drains zeroed
                    // and is blamed in the report + flight dump.
                    self.acc.kill(s);
                    ims_obs::instant("fault", "shard_lost");
                    if self.capture.is_some() {
                        eprintln!("warning: shard {s} rebuild failed: {err}");
                    }
                }
            }
        }
    }

    /// Re-folds the current block's frames into shard `s` from the
    /// capture log. Errors (no log attached, frames missing from the log)
    /// leave the shard lost.
    fn rebuild_shard(&mut self, s: usize) -> Result<(), String> {
        let log = self.capture.clone().ok_or("no capture log attached")?;
        let packets = log.read_frames(&self.folded).map_err(|e| e.to_string())?;
        for p in &packets {
            if let Some((binner, drift)) = &mut self.rebuild_binner {
                binner.bin_frame_into(p.words(), *drift, &mut self.rebuild_scratch);
                let scratch = std::mem::take(&mut self.rebuild_scratch);
                let out = self.acc.rebuild_frame(s, &scratch);
                self.rebuild_scratch = scratch;
                out.map_err(|e| e.to_string())?;
            } else {
                self.acc
                    .rebuild_frame(s, &p.to_words())
                    .map_err(|e| e.to_string())?;
            }
        }
        Ok(())
    }

    fn drain_block(&mut self, emit: &mut dyn FnMut(Message)) {
        // Shards still lost at drain time zero their m/z range in the
        // merged block — degraded-but-correct everywhere else.
        for s in 0..self.acc.shard_count() {
            if self.acc.is_lost(s) {
                self.shards_lost += 1;
                self.lost_ranges.push(self.acc.shard_range(s));
                ims_obs::static_counter!("accumulator.shard.lost").incr();
            }
        }
        let block_saturation = self.acc.saturation_events();
        self.saturation_events += block_saturation;
        if let Some(tap) = &self.obs {
            if let Some(session) = tap.session {
                // Per-session saturation series for the serve surface; the
                // unlabeled global counter is bumped per frame by the core.
                ims_obs::metrics::counter(&format!(
                    "accumulator.saturation_events#session={session}"
                ))
                .add(block_saturation);
            }
        }
        let (drift, mz) = (self.acc.drift_bins(), self.acc.mz_bins());
        let data = if self.acc.shard_count() > 1 {
            let t = std::time::Instant::now();
            let merged = self.acc.drain_merged();
            ims_obs::static_histogram!("accumulator.shard.merge_ns").record_duration(t.elapsed());
            merged
        } else {
            self.acc.drain_merged()
        };
        self.folded.clear();
        let sparse = if self.sparse_enabled {
            ims_fpga::SparseBlock::from_dense_below(
                &data,
                drift,
                mz,
                ims_fpga::SPARSE_OCCUPANCY_THRESHOLD,
            )
        } else {
            None
        };
        if sparse.is_some() {
            self.sparse_blocks += 1;
            ims_obs::static_counter!("accumulate.sparse_blocks").incr();
        } else if self.sparse_enabled {
            ims_obs::static_counter!("accumulate.dense_blocks").incr();
        }
        let block = Block {
            index: self.next_index,
            frames: self.in_block,
            data,
            sparse,
        };
        self.next_index += 1;
        self.in_block = 0;
        emit(Message::Block(block));
    }
}

impl Stage for AccumulateStage {
    fn name(&self) -> &'static str {
        "accumulate"
    }

    fn process(&mut self, msg: Message, emit: &mut dyn FnMut(Message)) {
        match msg {
            Message::Frame(p) => {
                if !admit_frame(
                    &p,
                    "accumulate",
                    self.corrupt_policy,
                    &mut self.quarantined,
                    &self.obs,
                ) {
                    return;
                }
                self.acc
                    .capture_frame_iter(p.words())
                    .expect("frame shape mismatch in pipeline");
                self.folded.push(p.seq_no);
                if let Some(tap) = &self.obs {
                    // End-to-end frame latency: packing at the source to
                    // arrival in the accumulation RAM.
                    let e2e = ims_obs::trace::now_ns().saturating_sub(p.origin_ns);
                    tap.e2e_hist.record(e2e);
                    if tap.latency_slo_ns.is_some_and(|slo| e2e > slo) {
                        self.frames_slow += 1;
                    }
                }
                self.in_block += 1;
                // The kill site fires once per block, mid-block (after
                // the block has folded real data, before drain), keyed by
                // (block index, shard) — deterministic on any executor.
                if self.in_block == (self.frames_per_block / 2).max(1) {
                    self.check_shard_kills();
                }
                if self.in_block == self.frames_per_block {
                    self.drain_block(emit);
                }
            }
            other => emit(other),
        }
    }

    fn flush(&mut self, emit: &mut dyn FnMut(Message)) {
        if self.flush_remainder && (self.in_block > 0 || self.next_index == 0) {
            self.drain_block(emit);
        }
    }

    fn finalize(&mut self, report: &mut PipelineReport) {
        report.capture_cycles += self.acc.cycles();
        report.saturation_events += self.saturation_events + self.acc.saturation_events();
        report.frames_per_block = self.frames_per_block;
        report.frames_quarantined += self.quarantined;
        report.sparse_blocks += self.sparse_blocks;
        report.frames_over_latency_slo += self.frames_slow;
        report.shard_rebuilds += self.shard_rebuilds;
        report.shards_lost += self.shards_lost;
        report
            .lost_mz_ranges
            .extend(self.lost_ranges.iter().copied());
    }

    fn arm_faults(&mut self, injector: &FaultInjector, supervisor: &SupervisorConfig) {
        self.corrupt_policy = supervisor.corrupt_policy;
        self.injector = Some(injector.clone());
    }

    fn arm_capture(&mut self, log: &CaptureLog) {
        self.capture = Some(log.clone());
    }

    fn arm_obs(&mut self, tap: &ObsTap) {
        self.obs = Some(tap.clone());
    }

    // Blocks hand off through a depth-2 "ping-pong" channel: the
    // double-buffered readout of the real capture engine.
    fn output_depth(&self, _default: usize) -> usize {
        2
    }
}

/// Which engine deconvolves accumulated blocks.
///
/// All three compute the identical integer result (same arithmetic, same
/// rounding); they differ only in cycle/throughput modelling — which is the
/// E3/E11 story: FWHT core vs naive MAC array vs multi-core software.
pub enum DeconvBackend {
    /// The PNNL-enhanced FWHT FPGA core.
    Fpga(DeconvCore),
    /// The naive `O(N²)` MAC-array FPGA core.
    Naive(NaiveMacCore),
    /// The CPU software path: scheduler-parallel over panels of m/z
    /// columns, running the same fixed-point kernel row-vectorized across
    /// each panel.
    Software {
        /// The panel kernel (shared read-only across workers).
        core: DeconvCore,
        /// Worker threads (0 = machine default).
        threads: usize,
    },
}

impl DeconvBackend {
    /// The FWHT FPGA core.
    pub fn fpga(seq: &MSequence, cfg: DeconvConfig) -> Self {
        DeconvBackend::Fpga(DeconvCore::new(seq, cfg))
    }

    /// The naive MAC-array core, configured to match `cfg`'s output format
    /// and convention so results stay bit-identical to the FWHT core.
    pub fn naive(seq: &MSequence, cfg: DeconvConfig) -> Self {
        DeconvBackend::Naive(NaiveMacCore::new(
            seq,
            NaiveConfig {
                output_frac_bits: cfg.output_frac_bits,
                convention: cfg.convention,
                ..NaiveConfig::default()
            },
        ))
    }

    /// The software path on `threads` workers (0 = share the global pool).
    pub fn software(seq: &MSequence, cfg: DeconvConfig, threads: usize) -> Self {
        DeconvBackend::Software {
            core: DeconvCore::new(seq, cfg),
            threads,
        }
    }

    /// The FWHT core of this backend, when it has one (the FPGA model or
    /// the software engine — the naive MAC array does not speak sparse).
    fn fwht_core_mut(&mut self) -> Option<&mut DeconvCore> {
        match self {
            DeconvBackend::Fpga(core) => Some(core),
            DeconvBackend::Software { core, .. } => Some(core),
            DeconvBackend::Naive(_) => None,
        }
    }

    /// Parses a backend name (`fpga` | `naive` | `software`).
    pub fn from_name(
        name: &str,
        seq: &MSequence,
        cfg: DeconvConfig,
        threads: usize,
    ) -> Option<Self> {
        match name {
            "fpga" => Some(Self::fpga(seq, cfg)),
            "naive" => Some(Self::naive(seq, cfg)),
            "software" => Some(Self::software(seq, cfg, threads)),
            _ => None,
        }
    }

    /// Stable backend name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            DeconvBackend::Fpga(_) => "fpga-fwht",
            DeconvBackend::Naive(_) => "naive-mac",
            DeconvBackend::Software { .. } => "software",
        }
    }
}

/// Deconvolution: turns each accumulated block into a deconvolved one.
pub struct DeconvolveStage {
    backend: DeconvBackend,
    mz_bins: usize,
    /// Column-panel width the software backend batches over.
    panel_width: usize,
    /// Data cells (drift × m/z) deconvolved so far.
    cells: u64,
    /// Model cycles tallied for the software backend (whose panel kernel
    /// does not count cycles itself).
    software_cycles: u64,
    /// When armed, the per-block hardware-backend failure site.
    injector: Option<FaultInjector>,
    /// The software panel engine used to recover blocks a hardware-model
    /// backend fails on (bit-identical output — see
    /// [`with_fallback`](Self::with_fallback)).
    fallback_core: Option<DeconvCore>,
    /// Whether the supervisor allows falling back at all.
    fallback_enabled: bool,
    /// Consecutive failures before the switch becomes permanent.
    max_consecutive_failures: u32,
    consecutive_failures: u32,
    /// Permanently on the software engine for the rest of the run.
    fallen_back: bool,
    /// Blocks recovered via the software engine.
    fallbacks: u64,
}

impl DeconvolveStage {
    /// Wraps a backend for blocks that are `mz_bins` columns wide.
    pub fn new(backend: DeconvBackend, mz_bins: usize) -> Self {
        Self {
            backend,
            mz_bins,
            panel_width: FIXED_POINT_PANEL_WIDTH,
            cells: 0,
            software_cycles: 0,
            injector: None,
            fallback_core: None,
            fallback_enabled: true,
            max_consecutive_failures: 3,
            consecutive_failures: 0,
            fallen_back: false,
            fallbacks: 0,
        }
    }

    /// Sets the column-panel width the software backend batches over
    /// (clamped to at least 1). Panel width changes scheduling only, never
    /// values, so any width yields bit-identical output.
    pub fn with_panel_width(mut self, width: usize) -> Self {
        self.panel_width = width.max(1);
        self
    }

    /// Attaches a software panel engine as the degradation target for
    /// hardware-backend failures. All engines compute the identical
    /// integer result, so a recovered block is bit-identical to what the
    /// hardware path would have produced — only cycle accounting differs.
    /// Without a fallback (or with `deconv_fallback` disabled in the
    /// supervisor config), a backend failure panics the stage, which the
    /// supervised executor converts into a structured error.
    pub fn with_fallback(mut self, core: DeconvCore) -> Self {
        self.fallback_core = Some(core);
        self
    }

    /// Should this block be recovered on the software engine? Tracks the
    /// consecutive-failure window and the permanent switch; panics when a
    /// hardware failure hits and no fallback is available.
    fn route_to_fallback(&mut self, block_index: u64) -> bool {
        let hardware = matches!(
            self.backend,
            DeconvBackend::Fpga(_) | DeconvBackend::Naive(_)
        );
        if !hardware {
            return false;
        }
        if self.fallen_back {
            return true;
        }
        let failed = self
            .injector
            .as_ref()
            .is_some_and(|inj| inj.deconv_fails(block_index));
        if !failed {
            self.consecutive_failures = 0;
            return false;
        }
        if !self.fallback_enabled || self.fallback_core.is_none() {
            panic!(
                "deconvolve backend `{}` failed on block {block_index} and no fallback is available",
                self.backend.name()
            );
        }
        self.consecutive_failures += 1;
        self.fallbacks += 1;
        ims_obs::static_counter!("fault.recovered.deconv_fallback").incr();
        ims_obs::instant("fault", "deconv_fallback");
        if self.consecutive_failures >= self.max_consecutive_failures {
            self.fallen_back = true;
        }
        true
    }
}

impl Stage for DeconvolveStage {
    fn name(&self) -> &'static str {
        "deconvolve"
    }

    fn process(&mut self, msg: Message, emit: &mut dyn FnMut(Message)) {
        match msg {
            Message::Block(b) => {
                self.cells += b.data.len() as u64;
                let data = if self.route_to_fallback(b.index) {
                    // Recovery path: the hardware-model backend failed, so
                    // this block runs on the software panel engine instead
                    // — same integer arithmetic, bit-identical output.
                    let core = self
                        .fallback_core
                        .as_ref()
                        .expect("route_to_fallback requires a fallback core");
                    self.software_cycles += core.cycles_per_block(self.mz_bins);
                    software_deconvolve_block(core, &b.data, self.mz_bins, 0, self.panel_width)
                } else if let (Some(sparse), Some(core)) = (&b.sparse, self.backend.fwht_core_mut())
                {
                    // Zero-skipping path: solve only the occupied columns
                    // (bit-identical to the dense path — each occupied
                    // column runs the exact dense pipeline, and empty
                    // columns share the cached zero-column response).
                    core.deconvolve_block_sparse(sparse)
                } else {
                    match &mut self.backend {
                        DeconvBackend::Fpga(core) => core.deconvolve_block(&b.data, self.mz_bins),
                        DeconvBackend::Naive(core) => core.deconvolve_block(&b.data, self.mz_bins),
                        DeconvBackend::Software { core, threads } => {
                            // Keep the FPGA cycle model consistent even on
                            // the software path, so E3-style comparisons can
                            // read both wall time and modelled cycles.
                            self.software_cycles += core.cycles_per_block(self.mz_bins);
                            software_deconvolve_block(
                                core,
                                &b.data,
                                self.mz_bins,
                                *threads,
                                self.panel_width,
                            )
                        }
                    }
                };
                emit(Message::Deconvolved(DeconvolvedBlock {
                    index: b.index,
                    frames: b.frames,
                    data,
                }));
            }
            other => emit(other),
        }
    }

    fn finalize(&mut self, report: &mut PipelineReport) {
        report.backend = self.backend.name().to_string();
        report.deconv_cycles += match &self.backend {
            DeconvBackend::Fpga(core) => core.cycles(),
            DeconvBackend::Naive(core) => core.cycles(),
            // Dense software blocks tally into `software_cycles`; sparse
            // ones run on the core itself and tally there.
            DeconvBackend::Software { core, .. } => self.software_cycles + core.cycles(),
        };
        // Fallback blocks ran on the software engine; their modelled
        // cycles were tallied into software_cycles above.
        if self.fallbacks > 0 {
            if !matches!(self.backend, DeconvBackend::Software { .. }) {
                report.deconv_cycles += self.software_cycles;
            }
            report.deconv_fallbacks += self.fallbacks;
        }
    }

    fn cells_processed(&self) -> u64 {
        self.cells
    }

    fn arm_faults(&mut self, injector: &FaultInjector, supervisor: &SupervisorConfig) {
        self.injector = Some(injector.clone());
        self.fallback_enabled = supervisor.deconv_fallback;
        self.max_consecutive_failures = supervisor.max_consecutive_deconv_failures.max(1);
    }
}

/// The CPU software deconvolution of one block: slabs of adjacent m/z
/// column panels are embarrassingly parallel, each task running the same
/// fixed-point kernel row-vectorized across its panels (integer
/// arithmetic, so the result is bit-identical to the FPGA path and to any
/// other panel width or thread count). `threads == 0` shares the
/// process-wide [`Scheduler`] pool with the serving sessions; a positive
/// count spins up a private pool of `threads − 1` workers, the caller
/// being the final executor. Either way the effective width is clamped to
/// the machine's available parallelism, and one effective thread runs the
/// panels serially with no fan-out cost.
pub fn software_deconvolve_block(
    core: &DeconvCore,
    data: &[u64],
    mz_bins: usize,
    threads: usize,
    panel_width: usize,
) -> Vec<i64> {
    let n = core.len();
    assert_eq!(data.len(), n * mz_bins, "block shape mismatch");
    let panel_width = panel_width.max(1);
    let machine = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1);
    let mut out = vec![0i64; n * mz_bins];
    let solve_range =
        |lo: usize, hi: usize, panel: &mut Vec<u64>, work: &mut Vec<i64>, solved: &mut Vec<i64>| {
            let mut c0 = lo;
            while c0 < hi {
                let _sp = ims_obs::span_cat("software-fwht", "panel");
                let start = std::time::Instant::now();
                let width = panel_width.min(hi - c0);
                panel.clear();
                panel.reserve(n * width);
                for d in 0..n {
                    panel.extend_from_slice(&data[d * mz_bins + c0..d * mz_bins + c0 + width]);
                }
                let off = solved.len();
                solved.resize(off + n * width, 0);
                core.deconvolve_panel_into(panel, width, &mut solved[off..], work);
                ims_obs::static_histogram!("deconv.panel_ns.software-fwht")
                    .record_duration(start.elapsed());
                c0 += width;
            }
        };
    let scatter = |out: &mut [i64], lo: usize, slab: &[i64]| {
        let mut off = 0;
        let mut c0 = lo;
        while off < slab.len() {
            let width = panel_width.min(mz_bins - c0);
            for d in 0..n {
                out[d * mz_bins + c0..d * mz_bins + c0 + width]
                    .copy_from_slice(&slab[off + d * width..off + (d + 1) * width]);
            }
            c0 += width;
            off += n * width;
        }
    };
    let effective = if threads == 0 {
        Scheduler::global().threads() + 1
    } else {
        threads
    }
    .min(machine);
    let panels = mz_bins.div_ceil(panel_width);
    if effective <= 1 || panels <= 1 {
        let (mut panel, mut work, mut solved) = (Vec::new(), Vec::new(), Vec::new());
        solve_range(0, mz_bins, &mut panel, &mut work, &mut solved);
        scatter(&mut out, 0, &solved);
        return out;
    }
    // Slab granularity from the live cost histogram (same target as the
    // float engine: ~2 ms of kernel work per task), falling back to the
    // measured ~17 ns/cell of the fixed-point kernel before warm-up.
    let hist = ims_obs::static_histogram!("deconv.panel_ns.software-fwht");
    let summary = hist.summary();
    let panel_cost = if summary.count >= 16 {
        (summary.mean as u64).max(1)
    } else {
        (17 * n as u64 * panel_width as u64).max(1)
    };
    let per_task = usize::try_from(2_000_000 / panel_cost)
        .unwrap_or(usize::MAX)
        .max(2)
        .min(panels.div_ceil(effective))
        .max(1);
    let ranges: Vec<(usize, usize)> = (0..panels.div_ceil(per_task))
        .map(|t| {
            let lo = (t * per_task * panel_width).min(mz_bins);
            let hi = ((t + 1) * per_task * panel_width).min(mz_bins);
            (lo, hi)
        })
        .filter(|(lo, hi)| lo < hi)
        .collect();
    let mut slabs: Vec<Vec<i64>> = vec![Vec::new(); ranges.len()];
    let slab_hist = ims_obs::static_histogram!("deconv.slab_panels");
    for &(lo, hi) in &ranges {
        slab_hist.record((hi - lo).div_ceil(panel_width) as u64);
    }
    let solve = &solve_range;
    let run = |sched: &Scheduler, slabs: &mut Vec<Vec<i64>>| {
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = ranges
            .iter()
            .zip(slabs.iter_mut())
            .map(|(&(lo, hi), slab)| {
                Box::new(move || {
                    let (mut panel, mut work) = (Vec::new(), Vec::new());
                    solve(lo, hi, &mut panel, &mut work, slab);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        let tag = ims_obs::prof::intern_tag("-", "deconvolve", "software-fwht");
        sched.run_batch_tagged(jobs, tag);
    };
    if threads == 0 {
        run(Scheduler::global(), &mut slabs);
    } else {
        let pool = Scheduler::new(effective - 1);
        run(&pool, &mut slabs);
        pool.shutdown();
    }
    for (&(lo, _hi), slab) in ranges.iter().zip(slabs.iter()) {
        scatter(&mut out, lo, slab);
    }
    out
}
