//! The sharded work-stealing runtime the executors and the session
//! multiplexer run on.
//!
//! The dedicated-thread executor of PR-5 spawned one thread per stage per
//! run: correct, but threads exist whether or not there is work, and N
//! concurrent sessions would mean N × stages threads fighting the
//! scheduler. This module replaces that with a fixed worker pool sized to
//! `min(cores, 8)` ([`default_pool_threads`]) and turns every pipeline
//! node — the frame source and each stage — into a *cooperatively
//! scheduled task*:
//!
//! * **Sharded queues.** Each worker owns a run queue (a LIFO slot for
//!   wake locality plus a FIFO deque for fairness); tasks pushed from
//!   outside the pool land in a shared injector queue; idle workers
//!   steal from the back of other shards.
//! * **Non-blocking data plane.** Stages exchange messages through
//!   bounded inboxes (the per-session channel credits). A task that
//!   cannot push (downstream full) or pop (inbox empty) *returns* to the
//!   pool instead of blocking a thread, and is woken by the exact event
//!   that unblocks it (a downstream pop, an upstream push or close).
//!   This is what lets one worker drive an entire graph — or 64 graphs —
//!   without deadlock.
//! * **Wake protocol.** Each node carries an atomic state (`IDLE`,
//!   `QUEUED`, `RUNNING`, `RUNNING_DIRTY`); wakes CAS `IDLE → QUEUED`
//!   (push) or `RUNNING → RUNNING_DIRTY` (requeue after the current
//!   poll), so a node is in at most one queue and no wake is ever lost.
//! * **Supervision, preserved.** Every `process`/`flush` call runs under
//!   `catch_unwind`; a panicked stage turns poisoned and drains its
//!   inbox without processing. A per-run watchdog thread (only when
//!   `stall_timeout` is configured) polls the same per-node progress
//!   counters the threaded executor kept, blames the upstream-most
//!   unfinished node, cancels injected stalls, and records a
//!   [`PipelineError::StageStalled`]. `RunOutcome` semantics are
//!   bit-compatible with PR-5.
//! * **Tenant identity.** A pipeline tagged with a session label (see
//!   `Pipeline::with_session`) registers its meters under
//!   `name#session=<label>` — the suffix the Prometheus exporter turns
//!   into a `session="…"` label — and opens its spans under interned
//!   `stage@label` categories, so one shared pool still yields
//!   per-tenant metrics, sampler series, and trace tracks.
//!
//! Fairness: a task yields after a fixed quantum of messages, so a hot
//! session cannot pin a worker; its bounded inboxes (credits) stop it
//! from flooding memory ahead of a slow stage.

use super::error::PipelineError;
use super::executor::{
    finish_report, maybe_dump_flight, panic_message, FlightConfig, Pipeline, PipelineOutput,
    StageMeter,
};
use super::report::PipelineReport;
use super::stages::FrameSource;
use super::{flight_event, DeconvolvedBlock, Message, Stage};
use crate::fault::FaultInjector;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering::{Relaxed, SeqCst};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, Weak};
use std::time::{Duration, Instant};

/// Messages a task may process (or frames a source may emit) before it
/// yields its worker back to the pool.
const QUANTUM: u32 = 64;

/// How long an idle worker sleeps before re-scanning the queues anyway —
/// a belt-and-braces bound on any lost-wakeup bug, not the design wake
/// path.
const PARK_TIMEOUT: Duration = Duration::from_millis(50);

/// The worker-pool size the global scheduler uses: machine width capped
/// at 8 (the serving design point — sessions beyond that multiplex).
pub fn default_pool_threads() -> usize {
    std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1)
        .min(8)
}

/// Locks a mutex, riding through poisoning: scheduler state stays usable
/// even if some other holder panicked (stage panics never unwind while
/// holding these — they are caught inside the poll).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------

/// A handle to a worker pool. Cheap to clone; all clones share the pool.
#[derive(Clone)]
pub struct Scheduler {
    pool: Arc<Pool>,
}

struct Pool {
    shards: Vec<Shard>,
    /// Tasks pushed from threads outside the pool.
    injector: Mutex<VecDeque<Task>>,
    /// Queued-task count: pushed before the sleep-lock notify, popped on
    /// dequeue, so a worker never parks while work is visible.
    pending: AtomicUsize,
    sleep: Mutex<SleepState>,
    wakeup: Condvar,
    stats: SchedStats,
}

/// Lock-free per-pool tallies of the scheduler's hot points. Every event
/// is also mirrored into the global metrics registry (the `sched.*`
/// families on `/metrics`); these pool-local copies exist so tests on
/// private pools can assert invariants without cross-pool noise.
#[derive(Default)]
struct SchedStats {
    local_pops: AtomicU64,
    injector_pops: AtomicU64,
    steals: AtomicU64,
    executed: AtomicU64,
    parks: AtomicU64,
    wakes: AtomicU64,
    dwell_samples: AtomicU64,
}

/// Point-in-time copy of one pool's scheduler telemetry (see
/// [`Scheduler::stats`]).
///
/// Invariant (at quiescence): `local_pops + injector_pops + steals ==
/// executed` — every executed task was dequeued by exactly one of the
/// three pop paths. Jobs drained by a [`Scheduler::run_batch`] *caller*
/// never pass through the queues and are counted by none of these.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStatsSnapshot {
    /// Tasks a worker popped from its own shard (LIFO slot or FIFO).
    pub local_pops: u64,
    /// Tasks popped from the shared injector queue.
    pub injector_pops: u64,
    /// Tasks stolen from the back of another worker's shard.
    pub steals: u64,
    /// Tasks dispatched by worker loops.
    pub executed: u64,
    /// Times a worker went to sleep on the wakeup condvar.
    pub parks: u64,
    /// Pushes that notified a sleeping worker.
    pub wakes: u64,
    /// Queue-dwell samples recorded (always 0 on single-worker pools:
    /// with one shard there is no cross-worker queueing to measure).
    pub dwell_samples: u64,
}

#[derive(Default)]
struct SleepState {
    sleepers: usize,
    shutdown: bool,
}

#[derive(Default)]
struct Shard {
    queue: Mutex<ShardQueue>,
}

#[derive(Default)]
struct ShardQueue {
    /// Most-recently-woken task: run next for cache locality. Never
    /// stolen.
    lifo: Option<Task>,
    /// Owner pops the front; thieves steal the back.
    fifo: VecDeque<Task>,
}

/// One queued unit of work plus its enqueue timestamp (for queue-dwell
/// accounting; `0` on single-worker pools, where dispatch follows enqueue
/// trivially and dwell would only measure the worker's own backlog).
struct Task {
    kind: TaskKind,
    enqueued_ns: u64,
}

/// One schedulable unit: a pipeline node, or a batch of data-parallel jobs
/// (block deconvolution slabs) sharing the pool with the session graphs.
enum TaskKind {
    Node(Arc<Node>),
    Jobs(Arc<JobBatch>),
}

/// A batch of independent closures submitted by [`Scheduler::run_batch`].
///
/// Workers take **one job per poll** and re-enqueue the batch while jobs
/// remain, so a long batch interleaves with pipeline nodes instead of
/// pinning workers (the same fairness contract as the node quantum). The
/// submitting thread participates in draining the queue, which means a
/// batch completes even on a fully busy — or single-worker — pool, and
/// nested submission from inside a job cannot deadlock.
struct JobBatch {
    /// Jobs not yet started.
    jobs: Mutex<VecDeque<Box<dyn FnOnce() + Send>>>,
    /// Jobs not yet finished (started and unstarted).
    remaining: AtomicUsize,
    /// Completion latch: flipped by whichever thread finishes the last job.
    done: Mutex<bool>,
    done_cv: Condvar,
    /// First panic payload message observed in any job.
    panic: Mutex<Option<String>>,
    /// Profiler tag workers publish while running this batch's jobs (see
    /// [`ims_obs::prof`]); carries the deconvolution method name.
    prof_tag: u32,
}

impl JobBatch {
    /// Runs `job`, recording a panic instead of unwinding into the worker,
    /// and releases the completion latch when it was the last one.
    fn run_one(&self, job: Box<dyn FnOnce() + Send>) {
        if let Err(payload) = catch_unwind(AssertUnwindSafe(job)) {
            let msg = panic_message(payload);
            lock(&self.panic).get_or_insert(msg);
        }
        if self.remaining.fetch_sub(1, SeqCst) == 1 {
            *lock(&self.done) = true;
            self.done_cv.notify_all();
        }
    }
}

thread_local! {
    /// `(pool identity, shard index)` of the worker running this thread.
    static WORKER: std::cell::Cell<Option<(usize, usize)>> =
        const { std::cell::Cell::new(None) };
}

impl Scheduler {
    /// Spawns a pool of `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let pool = Arc::new(Pool {
            shards: (0..threads).map(|_| Shard::default()).collect(),
            injector: Mutex::new(VecDeque::new()),
            pending: AtomicUsize::new(0),
            sleep: Mutex::new(SleepState::default()),
            wakeup: Condvar::new(),
            stats: SchedStats::default(),
        });
        for i in 0..threads {
            let p = pool.clone();
            std::thread::Builder::new()
                .name(format!("sched-worker-{i}"))
                .spawn(move || worker_loop(p, i))
                .expect("spawn scheduler worker");
        }
        Self { pool }
    }

    /// The process-wide pool (size [`default_pool_threads`]) that
    /// `run_threaded`/`run_scheduled` and the session manager share.
    pub fn global() -> &'static Scheduler {
        static GLOBAL: OnceLock<Scheduler> = OnceLock::new();
        GLOBAL.get_or_init(|| Scheduler::new(default_pool_threads()))
    }

    /// Worker count of this pool.
    pub fn threads(&self) -> usize {
        self.pool.shards.len()
    }

    /// This pool's scheduler telemetry so far (see
    /// [`SchedStatsSnapshot`] for the invariants it carries).
    pub fn stats(&self) -> SchedStatsSnapshot {
        let s = &self.pool.stats;
        SchedStatsSnapshot {
            local_pops: s.local_pops.load(Relaxed),
            injector_pops: s.injector_pops.load(Relaxed),
            steals: s.steals.load(Relaxed),
            executed: s.executed.load(Relaxed),
            parks: s.parks.load(Relaxed),
            wakes: s.wakes.load(Relaxed),
            dwell_samples: s.dwell_samples.load(Relaxed),
        }
    }

    /// Runs a batch of independent jobs on the pool, blocking until every
    /// job has finished. The calling thread participates in draining the
    /// batch, so this completes even when every worker is busy (or the
    /// pool has a single worker and the caller *is* it, via nested
    /// submission); workers interleave batch jobs with pipeline nodes one
    /// job at a time, so serving sessions are not starved by a block
    /// deconvolution. If any job panics the batch still runs to
    /// completion, then this call panics with the first captured message.
    ///
    /// Jobs may borrow from the caller's stack: the function does not
    /// return until all of them are done.
    pub fn run_batch<'scope>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
        static DEFAULT_TAG: OnceLock<u32> = OnceLock::new();
        let tag = *DEFAULT_TAG.get_or_init(|| ims_obs::prof::intern_tag("-", "batch", "-"));
        self.run_batch_tagged(jobs, tag);
    }

    /// [`Scheduler::run_batch`] with an explicit profiler tag (from
    /// [`ims_obs::prof::intern_tag`]): workers publish `tag` while
    /// running this batch's jobs, so sampled CPU lands on the submitting
    /// stage/method instead of a generic batch bucket.
    pub fn run_batch_tagged<'scope>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'scope>>, tag: u32) {
        if jobs.is_empty() {
            return;
        }
        // SAFETY: the closures are handed to worker threads, which
        // requires 'static, but every job is guaranteed finished before
        // this function returns (the completion latch below), so no
        // borrow escapes its scope. Box<dyn FnOnce> has identical layout
        // regardless of the trait object's lifetime bound.
        let jobs: Vec<Box<dyn FnOnce() + Send + 'static>> = unsafe { std::mem::transmute(jobs) };
        let batch = Arc::new(JobBatch {
            remaining: AtomicUsize::new(jobs.len()),
            jobs: Mutex::new(jobs.into()),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
            panic: Mutex::new(None),
            prof_tag: tag,
        });
        self.pool.push_task(TaskKind::Jobs(batch.clone()), false);
        // Drain alongside the workers.
        while let Some(job) = lock(&batch.jobs).pop_front() {
            batch.run_one(job);
        }
        // Queue empty; wait for jobs other threads are still running.
        let mut done = lock(&batch.done);
        while !*done {
            done = batch
                .done_cv
                .wait_timeout(done, PARK_TIMEOUT)
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
        drop(done);
        let panicked = lock(&batch.panic).take();
        if let Some(msg) = panicked {
            panic!("job in scheduler batch panicked: {msg}");
        }
    }

    /// Asks every worker to exit once the queues are drained of its
    /// current task. In-flight runs never complete after this; it exists
    /// for tests that spin up private pools, not for the global one.
    pub fn shutdown(&self) {
        let mut sleep = lock(&self.pool.sleep);
        sleep.shutdown = true;
        drop(sleep);
        self.pool.wakeup.notify_all();
    }
}

fn worker_loop(pool: Arc<Pool>, me: usize) {
    ims_obs::set_thread_name(&format!("sched-worker-{me}"));
    WORKER.with(|w| w.set(Some((Arc::as_ptr(&pool) as usize, me))));
    let prof = ims_obs::prof::register_worker();
    while let Some(task) = next_task(&pool, me, prof.slot()) {
        pool.stats.executed.fetch_add(1, Relaxed);
        ims_obs::static_counter!("sched.executed_total").incr();
        match task.kind {
            TaskKind::Node(node) => {
                // The one relaxed store per dispatch the profiler costs.
                prof.slot().set_tag(node.prof_tag);
                run_node(&pool, node);
            }
            TaskKind::Jobs(batch) => {
                prof.slot().set_tag(batch.prof_tag);
                run_jobs(&pool, batch);
            }
        }
    }
}

fn next_task(pool: &Pool, me: usize, prof: &ims_obs::WorkerSlot) -> Option<Task> {
    loop {
        if let Some(t) = pool.pop(me) {
            return Some(t);
        }
        let mut sleep = lock(&pool.sleep);
        if sleep.shutdown {
            return None;
        }
        // A push that raced our scan bumped `pending` before taking this
        // lock; retry instead of parking past it.
        if pool.pending.load(SeqCst) > 0 {
            drop(sleep);
            continue;
        }
        // Off the hot path: the dispatch store never clears the tag, so
        // mark the worker idle only when it actually parks.
        prof.clear_tag();
        pool.stats.parks.fetch_add(1, Relaxed);
        ims_obs::static_counter!("sched.parks_total").incr();
        sleep.sleepers += 1;
        let (mut sleep, _) = pool
            .wakeup
            .wait_timeout(sleep, PARK_TIMEOUT)
            .unwrap_or_else(|e| e.into_inner());
        sleep.sleepers -= 1;
    }
}

/// Worker-side batch step: claim one job, re-enqueue the batch if jobs
/// remain (before running, so other workers can drain it concurrently),
/// then run the claimed job.
fn run_jobs(pool: &Pool, batch: Arc<JobBatch>) {
    let (job, more) = {
        let mut q = lock(&batch.jobs);
        let job = q.pop_front();
        (job, !q.is_empty())
    };
    if more {
        pool.push_task(TaskKind::Jobs(batch.clone()), false);
    }
    if let Some(job) = job {
        batch.run_one(job);
    }
}

fn run_node(pool: &Pool, node: Arc<Node>) {
    node.state.store(RUNNING, SeqCst);
    match node.poll() {
        Poll::Yield => {
            node.state.store(QUEUED, SeqCst);
            pool.push(node, false);
        }
        Poll::Complete => node.state.store(IDLE, SeqCst),
        Poll::Pending => {
            // A wake that landed mid-poll left the state RUNNING_DIRTY;
            // honour it by requeueing instead of idling.
            if node
                .state
                .compare_exchange(RUNNING, IDLE, SeqCst, SeqCst)
                .is_err()
            {
                node.state.store(QUEUED, SeqCst);
                pool.push(node, true);
            }
        }
    }
}

impl Pool {
    /// Records one dequeue event: the pool-local + global pop counters
    /// for `branch`, and the enqueue→dispatch dwell when stamped.
    fn note_pop(&self, local: &AtomicU64, global: &'static ims_obs::Counter, task: &Task) {
        local.fetch_add(1, Relaxed);
        global.incr();
        if task.enqueued_ns > 0 {
            let dwell = ims_obs::trace::now_ns().saturating_sub(task.enqueued_ns);
            self.stats.dwell_samples.fetch_add(1, Relaxed);
            ims_obs::static_histogram!("sched.queue_dwell_ns").record(dwell);
        }
    }

    fn pop(&self, me: usize) -> Option<Task> {
        {
            let mut q = lock(&self.shards[me].queue);
            if let Some(t) = q.lifo.take().or_else(|| q.fifo.pop_front()) {
                self.pending.fetch_sub(1, SeqCst);
                drop(q);
                self.note_pop(
                    &self.stats.local_pops,
                    ims_obs::static_counter!("sched.local_pops_total"),
                    &t,
                );
                return Some(t);
            }
        }
        if let Some(t) = lock(&self.injector).pop_front() {
            self.pending.fetch_sub(1, SeqCst);
            self.note_pop(
                &self.stats.injector_pops,
                ims_obs::static_counter!("sched.injector_pops_total"),
                &t,
            );
            return Some(t);
        }
        let n = self.shards.len();
        for off in 1..n {
            let victim = (me + off) % n;
            if let Some(t) = lock(&self.shards[victim].queue).fifo.pop_back() {
                self.pending.fetch_sub(1, SeqCst);
                self.note_pop(
                    &self.stats.steals,
                    ims_obs::static_counter!("sched.steals_total"),
                    &t,
                );
                return Some(t);
            }
        }
        None
    }

    /// Enqueues a runnable node (see [`Pool::push_task`]).
    fn push(&self, node: Arc<Node>, to_lifo: bool) {
        self.push_task(TaskKind::Node(node), to_lifo);
    }

    /// Enqueues a task: onto the calling worker's shard (the LIFO slot
    /// for wakes, the FIFO for quantum yields), or the shared injector
    /// when called from outside the pool.
    fn push_task(&self, kind: TaskKind, to_lifo: bool) {
        let task = Task {
            kind,
            // Dwell is only meaningful with >1 worker competing for the
            // queues; a single-shard pool skips the timestamp entirely.
            enqueued_ns: if self.shards.len() > 1 {
                ims_obs::trace::now_ns()
            } else {
                0
            },
        };
        self.pending.fetch_add(1, SeqCst);
        let my_shard = WORKER.with(|w| match w.get() {
            Some((pool_id, shard)) if pool_id == self as *const Pool as usize => Some(shard),
            _ => None,
        });
        match my_shard {
            Some(shard) => {
                let mut q = lock(&self.shards[shard].queue);
                if to_lifo {
                    if let Some(evicted) = q.lifo.replace(task) {
                        q.fifo.push_front(evicted);
                    }
                } else {
                    q.fifo.push_back(task);
                }
            }
            None => lock(&self.injector).push_back(task),
        }
        let sleep = lock(&self.sleep);
        if sleep.sleepers > 0 {
            drop(sleep);
            self.wakeup.notify_one();
            self.stats.wakes.fetch_add(1, Relaxed);
            ims_obs::static_counter!("sched.wakes_total").incr();
        }
    }
}

// ---------------------------------------------------------------------
// Graph nodes as tasks
// ---------------------------------------------------------------------

const IDLE: u8 = 0;
const QUEUED: u8 = 1;
const RUNNING: u8 = 2;
const RUNNING_DIRTY: u8 = 3;

enum Poll {
    /// Quantum exhausted with work left: requeue for fairness.
    Yield,
    /// Blocked on input or output: wait for the unblocking wake.
    Pending,
    /// This node will never run again.
    Complete,
}

/// Shared state of one scheduled run (one session).
struct RunCore {
    pool: Arc<Pool>,
    /// Per-node progress counters (index 0 = source), watchdog-polled.
    progress: Vec<AtomicU64>,
    /// Per-node completion flags, watchdog blame order.
    done: Vec<AtomicBool>,
    /// Watchdog fired: the source stops producing so the graph drains.
    cancel: AtomicBool,
    injector: Option<FaultInjector>,
    /// Collected output blocks (the sink; unbounded like the threaded
    /// executor's collector thread).
    sink: Mutex<Vec<DeconvolvedBlock>>,
    completed: Mutex<bool>,
    completed_cv: Condvar,
    /// Watchdog-recorded stalls; panics are gathered from the nodes at
    /// join so the error order (stalls first, then panics in stage
    /// order) matches the threaded executor's report contract.
    stall_errors: Mutex<Vec<PipelineError>>,
}

impl RunCore {
    fn finish(&self) {
        let mut c = lock(&self.completed);
        *c = true;
        drop(c);
        self.completed_cv.notify_all();
    }
}

/// A bounded message queue feeding one stage — the session's channel
/// credits for that hop.
struct Inbox {
    capacity: usize,
    q: Mutex<InboxQ>,
}

#[derive(Default)]
struct InboxQ {
    items: VecDeque<Message>,
    closed: bool,
}

impl Inbox {
    /// Pops one message; also reports closed-ness and the pre-pop depth
    /// (for queue accounting and full→not-full edge detection).
    fn pop(&self) -> (Option<Message>, bool, usize) {
        let mut q = lock(&self.q);
        let depth = q.items.len();
        (q.items.pop_front(), q.closed, depth)
    }
}

struct Node {
    state: AtomicU8,
    /// 0 = source, `i + 1` = stage `i`; indexes `progress`/`done`.
    index: usize,
    /// Span/trace category: the stage name, or `stage@session`.
    cat: &'static str,
    /// Profiler tag (`session, stage, -`) workers publish while polling
    /// this node (see [`ims_obs::prof`]).
    prof_tag: u32,
    /// `None` once the run has been joined and the body extracted.
    body: Mutex<Option<Body>>,
    /// `None` for the source.
    inbox: Option<Inbox>,
    /// `None` for the last stage (its output is the sink).
    downstream: Option<Arc<Node>>,
    /// Weak to break the `downstream` chain's reference cycle.
    upstream: OnceLock<Weak<Node>>,
    run: Arc<RunCore>,
}

enum Body {
    Source(SourceBody),
    Stage(StageBody),
}

struct SourceBody {
    source: Arc<FrameSource>,
    frames: u64,
    next: u64,
    /// A generated frame the full downstream inbox refused.
    stalled: Option<Message>,
    meter: StageMeter,
    panic: Option<String>,
    blocked_send_since: Option<Instant>,
    finished: bool,
}

struct StageBody {
    stage: Box<dyn Stage>,
    meter: StageMeter,
    queue_gauge: &'static ims_obs::Gauge,
    /// Emitted messages awaiting downstream credit.
    outbox: VecDeque<Message>,
    poisoned: Option<String>,
    flushed: bool,
    blocked_send_since: Option<Instant>,
    blocked_recv_since: Option<Instant>,
    finished: bool,
}

impl Node {
    fn poll(self: &Arc<Self>) -> Poll {
        let mut guard = lock(&self.body);
        let Some(body) = guard.as_mut() else {
            return Poll::Complete;
        };
        match body {
            Body::Source(s) => self.poll_source(s),
            Body::Stage(s) => self.poll_stage(s),
        }
    }

    fn poll_source(&self, s: &mut SourceBody) -> Poll {
        if s.finished {
            return Poll::Complete;
        }
        let run = &self.run;
        let mut budget = QUANTUM;
        loop {
            if let Some(msg) = s.stalled.take() {
                let (kind, item) = flight_event(&msg, true);
                let ts = ims_obs::trace::now_ns();
                match self.push_downstream(msg) {
                    Ok(()) => {
                        if let Some(t) = s.blocked_send_since.take() {
                            s.meter.blocked_send += t.elapsed();
                        }
                        s.meter.items_out += 1;
                        s.meter.record_flight_at(kind, item, ts);
                        run.progress[0].fetch_add(1, Relaxed);
                    }
                    Err(msg) => {
                        s.stalled = Some(msg);
                        s.blocked_send_since.get_or_insert_with(Instant::now);
                        return Poll::Pending;
                    }
                }
            }
            if s.panic.is_some() || run.cancel.load(Relaxed) || s.next >= s.frames {
                s.finished = true;
                run.done[0].store(true, Relaxed);
                self.close_downstream();
                return Poll::Complete;
            }
            if budget == 0 {
                return Poll::Yield;
            }
            budget -= 1;
            let i = s.next;
            if let Some(inj) = &run.injector {
                if let Some(stall) = inj.stall_duration(i) {
                    // The injected stall sleeps on the worker (it models
                    // a wedged producer); the watchdog's cancel breaks it
                    // mid-sleep, after which the source stops producing —
                    // exactly the dedicated-thread source's `break`.
                    if !inj.stall(stall) {
                        s.next = s.frames;
                        continue;
                    }
                }
                if inj.drop_frame(i) {
                    s.next = i + 1;
                    run.progress[0].fetch_add(1, Relaxed);
                    continue;
                }
            }
            let t = Instant::now();
            let source = s.source.clone();
            let cat = self.cat;
            match catch_unwind(AssertUnwindSafe(|| {
                let _sp = ims_obs::span_cat(cat, "process");
                source.packet(i)
            })) {
                Ok(packet) => {
                    let gen = t.elapsed();
                    s.meter.busy += gen;
                    s.meter.record_latency(gen);
                    s.stalled = Some(Message::Frame(packet));
                    s.next = i + 1;
                }
                Err(payload) => s.panic = Some(panic_message(payload)),
            }
        }
    }

    fn poll_stage(&self, b: &mut StageBody) -> Poll {
        if b.finished {
            return Poll::Complete;
        }
        let run = &self.run;
        let idx = self.index;
        let inbox = self.inbox.as_ref().expect("stage nodes have an inbox");
        let mut budget = QUANTUM;
        loop {
            // 1. Drain the outbox first: downstream credit gates input.
            while let Some(msg) = b.outbox.pop_front() {
                let (kind, item) = flight_event(&msg, true);
                // Egress timestamps are taken before the push: a fast
                // downstream may record its ingress the instant the push
                // lands, and chains sort by timestamp.
                let ts = ims_obs::trace::now_ns();
                match self.push_downstream(msg) {
                    Ok(()) => {
                        b.meter.items_out += 1;
                        b.meter.record_flight_at(kind, item, ts);
                    }
                    Err(msg) => {
                        b.outbox.push_front(msg);
                        b.blocked_send_since.get_or_insert_with(Instant::now);
                        return Poll::Pending;
                    }
                }
            }
            if let Some(t) = b.blocked_send_since.take() {
                b.meter.blocked_send += t.elapsed();
            }
            // 2. One input message.
            let (popped, closed, depth) = inbox.pop();
            match popped {
                Some(msg) => {
                    b.meter.queue_high_water = b.meter.queue_high_water.max(depth as u64);
                    b.queue_gauge.set(depth as u64);
                    ims_obs::counter_sample("queue-depth", self.cat, depth as f64);
                    if let Some(t) = b.blocked_recv_since.take() {
                        b.meter.blocked_recv += t.elapsed();
                    }
                    b.meter.items_in += 1;
                    {
                        let (kind, item) = flight_event(&msg, false);
                        b.meter.record_flight(kind, item);
                    }
                    if depth == inbox.capacity {
                        // full → not-full edge: give upstream its credit
                        self.wake_upstream();
                    }
                    if b.poisoned.is_some() {
                        // Drain-only mode: keep consuming so upstream
                        // never wedges on a full inbox, process nothing.
                        run.progress[idx].fetch_add(1, Relaxed);
                    } else {
                        let StageBody { stage, outbox, .. } = b;
                        let cat = self.cat;
                        let t = Instant::now();
                        let caught = catch_unwind(AssertUnwindSafe(|| {
                            let _sp = ims_obs::span_cat(cat, "process");
                            stage.process(msg, &mut |m| outbox.push_back(m));
                        }));
                        match caught {
                            Ok(()) => {
                                let took = t.elapsed();
                                b.meter.busy += took;
                                b.meter.record_latency(took);
                                b.meter.refresh_cells(b.stage.as_ref());
                            }
                            Err(p) => b.poisoned = Some(panic_message(p)),
                        }
                        run.progress[idx].fetch_add(1, Relaxed);
                    }
                    if budget == 0 {
                        return Poll::Yield;
                    }
                    budget -= 1;
                }
                None if closed => {
                    if b.poisoned.is_none() && !b.flushed {
                        b.flushed = true;
                        let StageBody { stage, outbox, .. } = b;
                        let cat = self.cat;
                        let t = Instant::now();
                        let caught = catch_unwind(AssertUnwindSafe(|| {
                            let _sp = ims_obs::span_cat(cat, "flush");
                            stage.flush(&mut |m| outbox.push_back(m));
                        }));
                        match caught {
                            Ok(()) => {
                                b.meter.busy += t.elapsed();
                                b.meter.refresh_cells(b.stage.as_ref());
                            }
                            Err(p) => b.poisoned = Some(panic_message(p)),
                        }
                        continue; // drain whatever flush emitted
                    }
                    b.finished = true;
                    run.done[idx].store(true, Relaxed);
                    self.close_downstream();
                    return Poll::Complete;
                }
                None => {
                    b.blocked_recv_since.get_or_insert_with(Instant::now);
                    return Poll::Pending;
                }
            }
        }
    }

    /// Offers a message downstream; `Err(msg)` hands it back when the
    /// inbox is out of credits. The last stage's output lands in the
    /// run's sink (unbounded, like the threaded collector).
    // `Err` is the rejected message itself, returned by value so the
    // caller can retry without an allocation — not an error payload.
    #[allow(clippy::result_large_err)]
    fn push_downstream(&self, msg: Message) -> Result<(), Message> {
        match &self.downstream {
            Some(next) => {
                let inbox = next.inbox.as_ref().expect("downstream has an inbox");
                {
                    let mut q = lock(&inbox.q);
                    if q.items.len() >= inbox.capacity {
                        return Err(msg);
                    }
                    q.items.push_back(msg);
                }
                next.wake(&self.run.pool);
                Ok(())
            }
            None => {
                if let Message::Deconvolved(b) = msg {
                    lock(&self.run.sink).push(b);
                }
                Ok(())
            }
        }
    }

    /// Closes the downstream inbox (EOF) — or, from the last stage,
    /// declares the run complete.
    fn close_downstream(&self) {
        match &self.downstream {
            Some(next) => {
                lock(&next.inbox.as_ref().expect("downstream has an inbox").q).closed = true;
                next.wake(&self.run.pool);
            }
            None => self.run.finish(),
        }
    }

    fn wake_upstream(&self) {
        if let Some(up) = self.upstream.get().and_then(Weak::upgrade) {
            up.wake(&self.run.pool);
        }
    }

    /// Makes sure this node runs (again): queues it when idle, marks it
    /// dirty when mid-poll. Lost-wake-free: state changes are CAS'd and
    /// every producer-side mutation happens before the wake.
    fn wake(self: &Arc<Self>, pool: &Arc<Pool>) {
        loop {
            match self.state.load(SeqCst) {
                IDLE => {
                    if self
                        .state
                        .compare_exchange(IDLE, QUEUED, SeqCst, SeqCst)
                        .is_ok()
                    {
                        pool.push(self.clone(), true);
                        return;
                    }
                }
                RUNNING => {
                    if self
                        .state
                        .compare_exchange(RUNNING, RUNNING_DIRTY, SeqCst, SeqCst)
                        .is_ok()
                    {
                        return;
                    }
                }
                _ => return, // QUEUED | RUNNING_DIRTY: already rescheduled
            }
        }
    }
}

// ---------------------------------------------------------------------
// Spawning a pipeline onto the pool
// ---------------------------------------------------------------------

/// Span category for a (possibly session-labeled) stage: interned
/// `name@session` so per-tenant activity gets its own trace track
/// identity; the plain stage name when unlabeled (keeping `htims trace`
/// categories stable).
fn session_cat(name: &'static str, session: Option<&'static str>) -> &'static str {
    match session {
        Some(s) => ims_obs::intern(&format!("{name}@{s}")),
        None => name,
    }
}

/// Submits a pipeline to `sched` and returns without waiting. Used by
/// `Pipeline::{run_threaded,run_scheduled,spawn_on}` and the session
/// manager.
pub(super) fn spawn(
    mut pipeline: Pipeline,
    sched: &Scheduler,
    executor: &'static str,
) -> ScheduledRun {
    assert!(!pipeline.stages.is_empty(), "pipeline has no stages");
    pipeline.arm();
    let start = Instant::now();
    // `capture` was already distributed to the source and stages by
    // `arm()`; the handle itself is not needed past this point.
    let Pipeline {
        source,
        stages,
        channel_depth,
        injector,
        supervisor,
        session,
        flight,
        capture: _,
    } = pipeline;
    let n = stages.len();
    let frames = source.frames();
    let source = Arc::new(source);
    let names: Vec<&'static str> = std::iter::once("source")
        .chain(stages.iter().map(|s| s.name()))
        .collect();

    let run = Arc::new(RunCore {
        pool: sched.pool.clone(),
        progress: (0..=n).map(|_| AtomicU64::new(0)).collect(),
        done: (0..=n).map(|_| AtomicBool::new(false)).collect(),
        cancel: AtomicBool::new(false),
        injector: injector.clone(),
        sink: Mutex::new(Vec::new()),
        completed: Mutex::new(false),
        completed_cv: Condvar::new(),
        stall_errors: Mutex::new(Vec::new()),
    });

    // Inbox capacity of stage i = the depth of the channel that fed it
    // under the threaded executor: `channel_depth` for stage 0, the
    // upstream stage's `output_depth` after that. These bounds are the
    // session's per-hop credits.
    let mut caps = Vec::with_capacity(n);
    caps.push(channel_depth);
    for s in stages.iter().take(n - 1) {
        caps.push(s.output_depth(channel_depth));
    }

    // Build back-to-front so each node owns an Arc to its downstream;
    // upstream links are Weak (the chain would otherwise be a cycle).
    let mut nodes: Vec<Arc<Node>> = Vec::with_capacity(n + 1);
    let mut downstream: Option<Arc<Node>> = None;
    for (i, stage) in stages.into_iter().enumerate().rev() {
        let name = stage.name();
        let queue_gauge = ims_obs::metrics::gauge(&StageMeter::metric_name(
            "pipeline.queue_depth",
            name,
            session,
        ));
        let mut meter = StageMeter::with_session(name, session);
        meter.flight = flight
            .labels
            .get(i + 1)
            .map(|&label| (flight.recorder.clone(), label));
        let node = Arc::new(Node {
            state: AtomicU8::new(IDLE),
            index: i + 1,
            cat: session_cat(name, session),
            prof_tag: ims_obs::prof::intern_tag(session.unwrap_or("-"), name, "-"),
            body: Mutex::new(Some(Body::Stage(StageBody {
                stage,
                meter,
                queue_gauge,
                outbox: VecDeque::new(),
                poisoned: None,
                flushed: false,
                blocked_send_since: None,
                blocked_recv_since: None,
                finished: false,
            }))),
            inbox: Some(Inbox {
                capacity: caps[i].max(1),
                q: Mutex::new(InboxQ::default()),
            }),
            downstream: downstream.take(),
            upstream: OnceLock::new(),
            run: run.clone(),
        });
        if let Some(next) = &node.downstream {
            let _ = next.upstream.set(Arc::downgrade(&node));
        }
        downstream = Some(node.clone());
        nodes.push(node);
    }
    let mut source_meter = StageMeter::with_session("source", session);
    source_meter.flight = flight
        .labels
        .first()
        .map(|&label| (flight.recorder.clone(), label));
    let source_node = Arc::new(Node {
        state: AtomicU8::new(IDLE),
        index: 0,
        cat: session_cat("source", session),
        prof_tag: ims_obs::prof::intern_tag(session.unwrap_or("-"), "source", "-"),
        body: Mutex::new(Some(Body::Source(SourceBody {
            source,
            frames,
            next: 0,
            stalled: None,
            meter: source_meter,
            panic: None,
            blocked_send_since: None,
            finished: false,
        }))),
        inbox: None,
        downstream: downstream.take(),
        upstream: OnceLock::new(),
        run: run.clone(),
    });
    if let Some(next) = &source_node.downstream {
        let _ = next.upstream.set(Arc::downgrade(&source_node));
    }
    nodes.push(source_node);
    nodes.reverse(); // index order: source, stage 0, …, stage n-1

    // Watchdog: its own thread per supervised run (the pool's workers
    // may all be busy — or sleeping inside an injected stall).
    let watchdog = supervisor.stall_timeout.map(|timeout| {
        let run = run.clone();
        let names: Vec<String> = names.iter().map(|s| s.to_string()).collect();
        let weak_nodes: Vec<Weak<Node>> = nodes.iter().map(Arc::downgrade).collect();
        std::thread::Builder::new()
            .name("sched-watchdog".into())
            .spawn(move || {
                ims_obs::set_thread_name("watchdog");
                let tick = (timeout / 4).max(Duration::from_millis(5)).min(timeout);
                let mut last: Vec<u64> = run.progress.iter().map(|p| p.load(Relaxed)).collect();
                let mut idle = Duration::ZERO;
                let mut completed = lock(&run.completed);
                loop {
                    let (guard, _) = run
                        .completed_cv
                        .wait_timeout(completed, tick)
                        .unwrap_or_else(|e| e.into_inner());
                    completed = guard;
                    if *completed || run.done.iter().all(|d| d.load(Relaxed)) {
                        return;
                    }
                    let now: Vec<u64> = run.progress.iter().map(|p| p.load(Relaxed)).collect();
                    if now != last {
                        last = now;
                        idle = Duration::ZERO;
                        continue;
                    }
                    idle += tick;
                    if idle < timeout {
                        continue;
                    }
                    // Stalled: blame the upstream-most unfinished node,
                    // break any injected stall, and let the graph drain.
                    let blamed = run.done.iter().position(|d| !d.load(Relaxed)).unwrap_or(0);
                    run.cancel.store(true, Relaxed);
                    if let Some(inj) = &run.injector {
                        inj.cancel();
                    }
                    ims_obs::static_counter!("pipeline.watchdog_stalls").incr();
                    ims_obs::instant("fault", "watchdog_stall");
                    lock(&run.stall_errors).push(PipelineError::StageStalled {
                        stage: names[blamed].clone(),
                        timeout_ms: timeout.as_millis() as u64,
                    });
                    drop(completed);
                    for w in &weak_nodes {
                        if let Some(node) = w.upgrade() {
                            node.wake(&run.pool);
                        }
                    }
                    return;
                }
            })
            .expect("spawn scheduler watchdog")
    });

    // Kick every node once: stages settle into Pending-on-input, the
    // source starts producing.
    for node in &nodes {
        node.wake(&sched.pool);
    }

    ScheduledRun {
        nodes,
        run,
        start,
        executor,
        channel_depth,
        frames,
        injector,
        watchdog,
        flight,
        session,
    }
}

/// An in-flight scheduled run (one session's pipeline).
pub struct ScheduledRun {
    nodes: Vec<Arc<Node>>,
    run: Arc<RunCore>,
    start: Instant,
    executor: &'static str,
    channel_depth: usize,
    frames: u64,
    injector: Option<FaultInjector>,
    watchdog: Option<std::thread::JoinHandle<()>>,
    flight: FlightConfig,
    session: Option<&'static str>,
}

impl ScheduledRun {
    /// Whether the graph has fully drained (join would not block).
    pub fn is_finished(&self) -> bool {
        *lock(&self.run.completed)
    }

    /// Waits for the graph to drain and assembles the same
    /// [`PipelineOutput`] contract the dedicated-thread executor
    /// produced: ordered blocks, per-stage meters, structured errors
    /// (stalls first, then panics in stage order), and the
    /// `RunOutcome` verdict.
    pub fn join(mut self) -> PipelineOutput {
        {
            let mut completed = lock(&self.run.completed);
            while !*completed {
                completed = self
                    .run
                    .completed_cv
                    .wait(completed)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
        if let Some(h) = self.watchdog.take() {
            let _ = h.join();
        }
        let mut errors: Vec<PipelineError> = std::mem::take(&mut *lock(&self.run.stall_errors));
        let mut meters: Vec<StageMeter> = Vec::with_capacity(self.nodes.len());
        let mut stages: Vec<Box<dyn Stage>> = Vec::with_capacity(self.nodes.len() - 1);
        for node in &self.nodes {
            let body = lock(&node.body).take().expect("node body taken once");
            match body {
                Body::Source(s) => {
                    if let Some(message) = s.panic {
                        errors.push(PipelineError::StagePanicked {
                            stage: "source".into(),
                            message,
                        });
                    }
                    meters.push(s.meter);
                }
                Body::Stage(s) => {
                    if let Some(message) = s.poisoned {
                        errors.push(PipelineError::StagePanicked {
                            stage: s.stage.name().into(),
                            message,
                        });
                    }
                    meters.push(s.meter);
                    stages.push(s.stage);
                }
            }
        }
        let blocks = std::mem::take(&mut *lock(&self.run.sink));
        let mut report = PipelineReport::new(self.executor);
        report.channel_depth = self.channel_depth;
        report.errors = errors;
        finish_report(
            &mut report,
            stages,
            meters,
            self.frames,
            blocks.len(),
            self.start,
            self.injector.as_ref(),
        );
        maybe_dump_flight(&mut report, &self.flight, self.session);
        PipelineOutput { blocks, report }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_batch_runs_every_job() {
        let sched = Scheduler::new(2);
        let hits = AtomicUsize::new(0);
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..64)
            .map(|_| {
                Box::new(|| {
                    hits.fetch_add(1, SeqCst);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        sched.run_batch(jobs);
        assert_eq!(hits.load(SeqCst), 64);
        sched.shutdown();
    }

    #[test]
    fn run_batch_borrows_caller_state() {
        // Jobs write into disjoint slices of a caller-owned buffer — the
        // pattern the batched deconvolver uses for its output slabs.
        let sched = Scheduler::new(2);
        let mut out = vec![0usize; 40];
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = out
            .chunks_mut(10)
            .enumerate()
            .map(|(i, chunk)| {
                Box::new(move || {
                    for (k, v) in chunk.iter_mut().enumerate() {
                        *v = i * 100 + k;
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        sched.run_batch(jobs);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, (i / 10) * 100 + i % 10);
        }
        sched.shutdown();
    }

    #[test]
    fn run_batch_propagates_panics_after_completion() {
        let sched = Scheduler::new(2);
        let completed = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<Box<dyn FnOnce() + Send>> = (0..8)
            .map(|i| {
                let completed = completed.clone();
                Box::new(move || {
                    if i == 3 {
                        panic!("job {i} exploded");
                    }
                    completed.fetch_add(1, SeqCst);
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        let err = catch_unwind(AssertUnwindSafe(|| sched.run_batch(jobs)))
            .expect_err("batch with a panicking job must panic");
        let msg = panic_message(err);
        assert!(msg.contains("job 3 exploded"), "got: {msg}");
        // The other jobs still ran to completion first.
        assert_eq!(completed.load(SeqCst), 7);
        sched.shutdown();
    }

    #[test]
    fn run_batch_nested_submission_does_not_deadlock() {
        // A single-worker pool where a batch job itself submits a batch:
        // the inner caller drains its own jobs, so this must complete.
        let sched = Scheduler::new(1);
        let hits = Arc::new(AtomicUsize::new(0));
        let inner_sched = sched.clone();
        let inner_hits = hits.clone();
        let jobs: Vec<Box<dyn FnOnce() + Send>> = vec![Box::new(move || {
            let h = inner_hits.clone();
            inner_sched.run_batch(vec![Box::new(move || {
                h.fetch_add(1, SeqCst);
            }) as Box<dyn FnOnce() + Send>]);
            inner_hits.fetch_add(1, SeqCst);
        })];
        sched.run_batch(jobs);
        assert_eq!(hits.load(SeqCst), 2);
        sched.shutdown();
    }

    #[test]
    fn run_batch_empty_is_a_no_op() {
        let sched = Scheduler::new(1);
        sched.run_batch(Vec::new());
        sched.shutdown();
    }
}
