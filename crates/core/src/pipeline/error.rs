//! Typed pipeline errors, run verdicts, and supervision policy.
//!
//! The threaded executor used to join stage threads with `expect`: one
//! panicking stage aborted the whole process with no report. These types
//! replace that with a structured taxonomy — every failure carries stage
//! (and where known, frame/block) provenance, the run drains cleanly, and
//! the caller gets a partial [`PipelineReport`](super::PipelineReport)
//! whose [`RunOutcome`] says how much to trust it.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// A structured failure from one pipeline run.
///
/// Externally tagged in JSON (`{"StagePanicked": {...}}`), so survival
/// reports and ledger consumers can match on the variant name.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PipelineError {
    /// A stage thread panicked; the supervisor caught it, drained its
    /// input, and kept the rest of the graph alive.
    StagePanicked {
        /// Which stage panicked (`"source"`, `"deconvolve"`, …).
        stage: String,
        /// The panic payload, as text.
        message: String,
    },
    /// The watchdog saw no progress anywhere in the graph for the
    /// configured timeout and blamed the upstream-most unfinished stage.
    StageStalled {
        /// The blamed stage.
        stage: String,
        /// The stall timeout that fired, milliseconds.
        timeout_ms: u64,
    },
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::StagePanicked { stage, message } => {
                write!(f, "stage `{stage}` panicked: {message}")
            }
            PipelineError::StageStalled { stage, timeout_ms } => {
                write!(
                    f,
                    "stage `{stage}` stalled (no progress for {timeout_ms} ms)"
                )
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// The verdict on one pipeline run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunOutcome {
    /// Clean run: no faults fired, nothing was lost.
    #[default]
    Completed,
    /// The run finished and produced output, but data was lost or a
    /// recovery policy engaged (quarantined frames, dropped frames,
    /// bit-flips, stalls survived, deconv fallback).
    Degraded,
    /// A fatal error ([`PipelineError`]) ended the run early; the report
    /// and any blocks are partial.
    Failed,
}

impl RunOutcome {
    /// Stable lowercase name (`completed` | `degraded` | `failed`).
    pub fn as_str(&self) -> &'static str {
        match self {
            RunOutcome::Completed => "completed",
            RunOutcome::Degraded => "degraded",
            RunOutcome::Failed => "failed",
        }
    }
}

/// What to do with a frame whose integrity checksum fails.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CorruptPolicy {
    /// Quarantine the frame: count it, drop it, keep running (the run
    /// degrades instead of dying). The default.
    #[default]
    Drop,
    /// Panic the consuming stage — the supervisor converts that into a
    /// [`PipelineError::StagePanicked`] and a `Failed` verdict. For runs
    /// where silent data loss is worse than an abort.
    Fail,
}

/// Supervision and degradation policy for a pipeline run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupervisorConfig {
    /// Watchdog timeout: when no stage makes progress for this long, the
    /// run is declared stalled (injected stalls are cancelled so the
    /// graph drains). `None` disables the watchdog entirely — no thread
    /// is spawned, no overhead. Must exceed the slowest single-item
    /// processing time of any stage.
    pub stall_timeout: Option<Duration>,
    /// What to do with checksum-failed frames.
    pub corrupt_policy: CorruptPolicy,
    /// Whether the deconvolve stage may fall back to the software panel
    /// engine when a hardware-model backend fails (bit-identical output,
    /// so only cycle accounting changes). With this off, a backend
    /// failure panics the stage.
    pub deconv_fallback: bool,
    /// Consecutive hardware-backend failures after which the deconvolve
    /// stage switches to the software engine permanently instead of
    /// retrying the hardware path per block.
    pub max_consecutive_deconv_failures: u32,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            stall_timeout: None,
            corrupt_policy: CorruptPolicy::Drop,
            deconv_fallback: true,
            max_consecutive_deconv_failures: 3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_round_trip_through_json_with_variant_tags() {
        let errs = vec![
            PipelineError::StagePanicked {
                stage: "deconvolve".into(),
                message: "backend failed on block 3".into(),
            },
            PipelineError::StageStalled {
                stage: "source".into(),
                timeout_ms: 250,
            },
        ];
        let json = serde_json::to_string(&errs).unwrap();
        assert!(json.contains("StagePanicked"), "{json}");
        assert!(json.contains("StageStalled"), "{json}");
        let back: Vec<PipelineError> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, errs);
        assert!(back[0].to_string().contains("deconvolve"));
        assert!(back[1].to_string().contains("250 ms"));
    }

    #[test]
    fn outcome_serializes_as_variant_name_and_defaults_completed() {
        assert_eq!(
            serde_json::to_string(&RunOutcome::Degraded).unwrap(),
            "\"Degraded\""
        );
        let back: RunOutcome = serde_json::from_str("\"Failed\"").unwrap();
        assert_eq!(back, RunOutcome::Failed);
        assert_eq!(RunOutcome::default(), RunOutcome::Completed);
        assert_eq!(RunOutcome::Degraded.as_str(), "degraded");
    }

    #[test]
    fn supervisor_defaults_are_safe() {
        let cfg = SupervisorConfig::default();
        assert!(cfg.stall_timeout.is_none(), "watchdog off by default");
        assert_eq!(cfg.corrupt_policy, CorruptPolicy::Drop);
        assert!(cfg.deconv_fallback);
        assert_eq!(cfg.max_consecutive_deconv_failures, 3);
    }
}
