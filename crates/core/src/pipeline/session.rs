//! Multi-tenant session multiplexing over the work-stealing scheduler.
//!
//! A *session* is one independent pipeline run — its own seed, its own
//! config fingerprint, optionally its own fault spec — admitted onto the
//! shared worker pool. The [`SessionManager`] is the admission and
//! bookkeeping layer on top of [`Scheduler`]:
//!
//! * **Admission control.** The session table is bounded
//!   (`max_sessions`); admitting past the bound, or reusing a label that
//!   is still running, is rejected with a typed [`AdmissionError`]
//!   instead of queueing unboundedly. Rejection is cheap — the pipeline
//!   is handed back untouched.
//! * **Quotas / back-pressure.** Each admitted graph keeps its bounded
//!   per-hop inboxes (the channel credits of [`super::sched`]), so one
//!   hot tenant saturates its own credits and yields its quantum rather
//!   than starving the pool.
//! * **Tenant identity.** Admission stamps the pipeline with the session
//!   label ([`Pipeline::with_session`]); every metric series, sampler
//!   point, ledger line, and trace track downstream carries it.
//! * **Teardown.** [`SessionHandle::join`] preserves the supervised
//!   [`PipelineOutput`] contract per session — a tenant that panics or
//!   stalls fails *alone*, with its `RunOutcome` recorded in the table
//!   while other sessions run to completion.
//!
//! The table keeps the latest state per label (running sessions plus the
//! last finished run under each label); durable history belongs to the
//! ledger, which gets one session-labeled record per run.

use super::executor::{Pipeline, PipelineOutput};
use super::sched::{ScheduledRun, Scheduler};
use super::DeconvolvedBlock;
use ims_fpga::dma::fnv1a64;
use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Hashes a run's output blocks into a single FNV-1a token: block index,
/// frame count, and every deconvolved word, all little-endian. The same
/// token the chaos harness uses for determinism checks, so session
/// fingerprints and chaos fingerprints are directly comparable.
pub fn output_fingerprint(blocks: &[DeconvolvedBlock]) -> u64 {
    let mut bytes = Vec::new();
    for b in blocks {
        bytes.extend_from_slice(&b.index.to_le_bytes());
        bytes.extend_from_slice(&b.frames.to_le_bytes());
        for v in &b.data {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
    }
    fnv1a64(&bytes)
}

/// Identity of a session at admission time.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Short tenant label (`s17`); becomes the `session` metric label, so
    /// it must stay low-cardinality (labels are interned for the process
    /// lifetime).
    pub label: String,
    /// The session's base seed (already derived per tenant; see
    /// `fault::session_seed`).
    pub seed: u64,
    /// Pre-rendered config fingerprint of the graph this session runs.
    pub fingerprint: String,
    /// Canonical compact form of the fault spec armed on this session
    /// (`FaultSpec::to_string`); `None` when the session runs clean.
    pub fault_spec: Option<String>,
}

/// Why a session was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The bounded session table already has `max` running sessions.
    TableFull {
        /// The configured bound.
        max: usize,
    },
    /// A session with this label is still running.
    DuplicateLabel {
        /// The offending label.
        label: String,
    },
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::TableFull { max } => {
                write!(f, "session table full ({max} running sessions)")
            }
            Self::DuplicateLabel { label } => {
                write!(f, "session label {label:?} is already running")
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Lifecycle state of a table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Admitted and on the pool.
    Running,
    /// Joined; `outcome` and the output fingerprint are final.
    Finished,
}

impl SessionState {
    /// Lowercase token used in JSON (matching the ledger/chaos idiom).
    pub fn as_str(&self) -> &'static str {
        match self {
            Self::Running => "running",
            Self::Finished => "finished",
        }
    }
}

impl Serialize for SessionState {
    fn serialize(&self) -> serde::Value {
        serde::Value::String(self.as_str().to_string())
    }
}

/// One session's row in the table — what `GET /sessions` serves.
#[derive(Debug, Clone, Serialize)]
pub struct SessionStatus {
    /// Tenant label (`s17`).
    pub label: String,
    /// The session's seed.
    pub seed: u64,
    /// Config fingerprint at admission.
    pub fingerprint: String,
    /// Running or finished.
    pub state: SessionState,
    /// Final verdict (lowercase [`RunOutcome::as_str`] token); `None`
    /// while running.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub outcome: Option<String>,
    /// Output blocks produced; `None` while running.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub blocks: Option<u64>,
    /// FNV-1a fingerprint of the output blocks (hex); `None` while
    /// running. Equal seeds and configs yield equal fingerprints — the
    /// reproducibility contract.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub output_fnv: Option<String>,
    /// Wall-clock seconds from admission to join; `None` while running.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub wall_seconds: Option<f64>,
    /// The fault spec this session was armed with (canonical compact
    /// form); `None` for clean sessions.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub fault_spec: Option<String>,
    /// Latest SLO evaluation for this tenant (burn rates + alert state);
    /// `None` until the serve loop's SLO engine has evaluated a window.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub slo: Option<ims_obs::SloSummary>,
    /// Path of the flight-recorder black-box dump from the session's
    /// last run, when it ended badly and dumping was armed.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub flight_dump: Option<String>,
}

struct Table {
    sessions: BTreeMap<String, SessionStatus>,
    running: usize,
}

/// Admission control and status bookkeeping for sessions multiplexed on
/// one scheduler. Cheap to clone-share via the internal `Arc`s; handles
/// keep the table alive.
pub struct SessionManager {
    sched: Scheduler,
    max_sessions: usize,
    table: Arc<Mutex<Table>>,
}

fn lock(table: &Mutex<Table>) -> MutexGuard<'_, Table> {
    table.lock().unwrap_or_else(|e| e.into_inner())
}

impl SessionManager {
    /// A manager admitting at most `max_sessions` concurrently running
    /// sessions onto `sched`.
    pub fn new(sched: Scheduler, max_sessions: usize) -> Self {
        Self {
            sched,
            max_sessions: max_sessions.max(1),
            table: Arc::new(Mutex::new(Table {
                sessions: BTreeMap::new(),
                running: 0,
            })),
        }
    }

    /// The running-session bound.
    pub fn max_sessions(&self) -> usize {
        self.max_sessions
    }

    /// Worker threads in the underlying pool.
    pub fn pool_threads(&self) -> usize {
        self.sched.threads()
    }

    /// The scheduler sessions are admitted onto.
    pub fn scheduler(&self) -> &Scheduler {
        &self.sched
    }

    /// Currently running sessions.
    pub fn running(&self) -> usize {
        lock(&self.table).running
    }

    /// Admits `pipeline` as session `config.label`, or rejects it.
    ///
    /// On admission the pipeline is stamped with the session label (all
    /// its telemetry becomes tenant-scoped) and submitted to the pool; a
    /// previous *finished* entry under the same label is replaced (the
    /// table is current state, the ledger is history). On rejection the
    /// pipeline is returned untouched so the caller can retry later.
    ///
    /// The large `Err` variant is the point: rejection must hand the
    /// built pipeline back by value, not lose it behind a box.
    #[allow(clippy::result_large_err)]
    pub fn admit(
        &self,
        config: SessionConfig,
        pipeline: Pipeline,
    ) -> Result<SessionHandle, (AdmissionError, Pipeline)> {
        {
            let mut table = lock(&self.table);
            // The label check comes first: "this label is still running" is
            // the more specific rejection when the table is also full.
            if table
                .sessions
                .get(&config.label)
                .is_some_and(|s| s.state == SessionState::Running)
            {
                return Err((
                    AdmissionError::DuplicateLabel {
                        label: config.label.clone(),
                    },
                    pipeline,
                ));
            }
            if table.running >= self.max_sessions {
                return Err((
                    AdmissionError::TableFull {
                        max: self.max_sessions,
                    },
                    pipeline,
                ));
            }
            table.running += 1;
            table.sessions.insert(
                config.label.clone(),
                SessionStatus {
                    label: config.label.clone(),
                    seed: config.seed,
                    fingerprint: config.fingerprint.clone(),
                    state: SessionState::Running,
                    outcome: None,
                    blocks: None,
                    output_fnv: None,
                    wall_seconds: None,
                    fault_spec: config.fault_spec.clone(),
                    slo: None,
                    flight_dump: None,
                },
            );
        }
        let run = pipeline.with_session(&config.label).spawn_on(&self.sched);
        Ok(SessionHandle {
            label: config.label,
            run,
            table: self.table.clone(),
            admitted: Instant::now(),
        })
    }

    /// Snapshot of every table row, in label order.
    pub fn statuses(&self) -> Vec<SessionStatus> {
        lock(&self.table).sessions.values().cloned().collect()
    }

    /// Stamps the latest SLO evaluation onto a session's table row, so
    /// `GET /sessions` shows burn rates and alert state per tenant. A
    /// no-op for labels not (or no longer) in the table.
    pub fn set_slo(&self, label: &str, summary: ims_obs::SloSummary) {
        if let Some(row) = lock(&self.table).sessions.get_mut(label) {
            row.slo = Some(summary);
        }
    }

    /// The `GET /sessions` body: pool shape, bounds, and every row.
    pub fn summary_json(&self) -> String {
        #[derive(Serialize)]
        struct Summary {
            max_sessions: usize,
            pool_threads: usize,
            running: usize,
            sessions: Vec<SessionStatus>,
        }
        // One guard for both reads: a guard temporary inside the struct
        // expression would live to the end of the statement and deadlock
        // against a second lock.
        let (running, sessions) = {
            let table = lock(&self.table);
            (table.running, table.sessions.values().cloned().collect())
        };
        let summary = Summary {
            max_sessions: self.max_sessions,
            pool_threads: self.sched.threads(),
            running,
            sessions,
        };
        serde_json::to_string_pretty(&summary).expect("session summary serializes")
    }
}

/// An admitted, in-flight session. Joining it finalizes the table row.
pub struct SessionHandle {
    label: String,
    run: ScheduledRun,
    table: Arc<Mutex<Table>>,
    admitted: Instant,
}

impl SessionHandle {
    /// The session's label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Whether the session's graph has fully drained (join won't block).
    pub fn is_finished(&self) -> bool {
        self.run.is_finished()
    }

    /// Waits for the session to drain, records its final state (outcome,
    /// block count, output fingerprint, wall time) in the table, and
    /// returns the run's output. Supervision semantics are per session:
    /// this tenant's panics and stalls are in *its* report only.
    pub fn join(self) -> PipelineOutput {
        let mut out = self.run.join();
        out.report.session = Some(self.label.clone());
        let mut table = lock(&self.table);
        table.running = table.running.saturating_sub(1);
        if let Some(row) = table.sessions.get_mut(&self.label) {
            row.state = SessionState::Finished;
            row.outcome = Some(out.report.outcome.as_str().to_string());
            row.blocks = Some(out.blocks.len() as u64);
            row.output_fnv = Some(format!("{:#018x}", output_fingerprint(&out.blocks)));
            row.wall_seconds = Some(self.admitted.elapsed().as_secs_f64());
            row.flight_dump = out.report.flight_dump.clone();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_json_renders_running_and_finished_rows() {
        let mgr = SessionManager::new(Scheduler::global().clone(), 4);
        {
            let mut table = lock(&mgr.table);
            table.running = 1;
            table.sessions.insert(
                "s0".into(),
                SessionStatus {
                    label: "s0".into(),
                    seed: 7,
                    fingerprint: "abcd".into(),
                    state: SessionState::Running,
                    outcome: None,
                    blocks: None,
                    output_fnv: None,
                    wall_seconds: None,
                    fault_spec: None,
                    slo: None,
                    flight_dump: None,
                },
            );
            table.sessions.insert(
                "s1".into(),
                SessionStatus {
                    label: "s1".into(),
                    seed: 8,
                    fingerprint: "abcd".into(),
                    state: SessionState::Finished,
                    outcome: Some("completed".into()),
                    blocks: Some(2),
                    output_fnv: Some("0x00000000deadbeef".into()),
                    wall_seconds: Some(0.25),
                    fault_spec: Some("frame.drop=0.01".into()),
                    slo: None,
                    flight_dump: None,
                },
            );
        }
        let json = mgr.summary_json();
        assert!(json.contains("\"running\""), "{json}");
        assert!(json.contains("\"state\": \"running\""), "{json}");
        assert!(json.contains("\"state\": \"finished\""), "{json}");
        assert!(json.contains("\"outcome\": \"completed\""), "{json}");
        assert!(json.contains("0x00000000deadbeef"), "{json}");
        assert!(
            json.contains("\"fault_spec\": \"frame.drop=0.01\""),
            "{json}"
        );
        // Running rows omit the final-only fields entirely.
        let s0 = json.split("\"label\": \"s0\"").nth(1).unwrap();
        let s0 = s0.split('}').next().unwrap();
        assert!(!s0.contains("outcome"), "{s0}");
    }
}
