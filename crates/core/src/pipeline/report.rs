//! Instrumentation records produced by a pipeline run.
//!
//! Every executor — threaded or inline — fills in one [`PipelineReport`]:
//! the run-level counters (frames, blocks, cycle totals, simulated link
//! time) plus one [`StageReport`] per stage with its busy/blocked split and
//! the high-water mark of its input queue. Both are plain serde structs so
//! the `htims pipeline` subcommand can emit them as JSON.

use super::error::{PipelineError, RunOutcome};
use crate::fault::FaultCounts;
use ims_obs::HistogramSummary;
use serde::{Deserialize, Serialize};

/// Per-stage instrumentation from one pipeline run.
///
/// In the threaded executor, `blocked_recv_seconds` is time the stage sat
/// waiting for input and `blocked_send_seconds` is time spent handing
/// messages downstream (dominated by back-pressure when the next stage is
/// the bottleneck). `queue_high_water` is the largest occupancy its input
/// channel reached — a full queue marks this stage as the choke point.
/// The inline executor runs everything on one thread, so those three
/// fields are meaningless there: they are `None` and omitted from the
/// JSON (rather than a misleading `0` that reads as "never blocked").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StageReport {
    /// Stage name (`"source"`, `"link"`, `"binner"`, `"accumulate"`,
    /// `"deconvolve"`).
    pub name: String,
    /// Messages consumed.
    pub items_in: u64,
    /// Messages emitted.
    pub items_out: u64,
    /// Time spent doing work, seconds.
    pub busy_seconds: f64,
    /// Time blocked waiting for input, seconds (threaded executor only).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub blocked_recv_seconds: Option<f64>,
    /// Time spent sending output (back-pressure wait included), seconds
    /// (threaded executor only).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub blocked_send_seconds: Option<f64>,
    /// Largest observed occupancy of this stage's input queue (threaded
    /// executor only).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub queue_high_water: Option<u64>,
    /// Distribution of per-item processing latency, nanoseconds (`None`
    /// when the stage processed no items).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub latency_ns: Option<HistogramSummary>,
    /// Data cells (drift bins × m/z bins) processed by this stage — 0 for
    /// stages that don't process 2-D blocks.
    #[serde(default)]
    pub cells: u64,
    /// Messages emitted per second of busy time (0 when unmeasured).
    #[serde(default)]
    pub items_per_second: f64,
    /// Millions of cells processed per second of busy time (0 when the
    /// stage processes no cells or no busy time was measured).
    #[serde(default)]
    pub mcells_per_second: f64,
}

/// Run-level instrumentation from one pipeline run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineReport {
    /// Which executor ran the graph: `"threaded"` or `"inline"`.
    pub executor: String,
    /// Deconvolution backend name (`"fpga-fwht"`, `"naive-mac"`,
    /// `"software"`), or `"none"` if the graph had no deconvolve stage.
    pub backend: String,
    /// Frames emitted by the source.
    pub frames: u64,
    /// Deconvolved blocks produced.
    pub blocks: u64,
    /// Frames folded into each block (the last block may hold fewer).
    pub frames_per_block: u64,
    /// Bounded-channel depth used for frame channels (threaded executor).
    pub channel_depth: usize,
    /// Wall time of the run, seconds.
    pub wall_seconds: f64,
    /// Simulated DMA transfer time accumulated by the link stage, seconds.
    pub simulated_link_seconds: f64,
    /// FPGA cycles spent capturing/accumulating.
    pub capture_cycles: u64,
    /// FPGA cycles spent binning m/z on chip.
    pub binner_cycles: u64,
    /// FPGA cycles spent deconvolving.
    pub deconv_cycles: u64,
    /// Saturating adds observed by the accumulator (data-quality flag).
    pub saturation_events: u64,
    /// Deconvolved blocks per second of the deconvolve stage's busy time
    /// (0 when the graph has no deconvolve stage or none was measured).
    #[serde(default)]
    pub deconv_blocks_per_second: f64,
    /// Millions of cells deconvolved per second of busy time.
    #[serde(default)]
    pub deconv_mcells_per_second: f64,
    /// The run verdict: `Failed` when any [`errors`](Self::errors) were
    /// recorded, `Degraded` when faults fired or frames were lost but the
    /// run finished, `Completed` otherwise. Legacy reports (serialized
    /// before supervision existed) read back as `Completed`.
    #[serde(default)]
    pub outcome: RunOutcome,
    /// Structured fatal errors (stage panics, watchdog stalls). Empty on
    /// clean and degraded runs.
    #[serde(default)]
    pub errors: Vec<PipelineError>,
    /// Counts of deterministically injected faults (all zero when the run
    /// had no injector).
    #[serde(default)]
    pub faults: FaultCounts,
    /// Frames whose integrity checksum failed and were quarantined under
    /// `CorruptPolicy::Drop`.
    #[serde(default)]
    pub frames_quarantined: u64,
    /// Blocks the deconvolve stage recovered by falling back to the
    /// software panel engine after a hardware-backend failure.
    #[serde(default)]
    pub deconv_fallbacks: u64,
    /// SIMD backend the panel kernels dispatched to in this process
    /// (`"scalar"`, `"sse2"`, `"avx2"`, `"avx512"`). Legacy reports read
    /// back as an empty string.
    #[serde(default)]
    pub simd: String,
    /// Accumulated blocks that took the sparse (CSR, zero-column
    /// skipping) deconvolution path. Dense runs report 0.
    #[serde(default)]
    pub sparse_blocks: u64,
    /// Tenant label when the run was admitted through the session
    /// multiplexer (`"s17"`); `None` for single-tenant runs. Stamped by
    /// `SessionHandle::join`, carried into session-labeled ledger lines.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub session: Option<String>,
    /// Frames whose end-to-end latency (packing to accumulation) exceeded
    /// the armed SLO's p99 target. 0 when no SLO was declared.
    #[serde(default)]
    pub frames_over_latency_slo: u64,
    /// Accumulator shards killed by `shard.kill` and rebuilt bit-exactly
    /// from the frame capture log.
    #[serde(default)]
    pub shard_rebuilds: u64,
    /// Accumulator shards that drained *lost* — killed with no capture
    /// log to rebuild from, their m/z ranges zeroed in the merged output.
    #[serde(default)]
    pub shards_lost: u64,
    /// The `[lo, hi)` m/z column ranges of lost shards, in drain order —
    /// the blast radius of an unrecovered `shard.kill`.
    #[serde(default)]
    pub lost_mz_ranges: Vec<(usize, usize)>,
    /// Path of the flight-recorder black-box dump this run wrote, when it
    /// ended badly enough to trigger one *and* a dump directory was
    /// configured. `None` (and omitted) otherwise.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub flight_dump: Option<String>,
    /// Per-stage breakdown, in graph order (source first).
    pub stages: Vec<StageReport>,
}

impl PipelineReport {
    /// An empty report for the given executor; stages fill it in via
    /// [`Stage::finalize`](super::Stage::finalize).
    pub fn new(executor: &str) -> Self {
        Self {
            executor: executor.to_string(),
            backend: "none".to_string(),
            frames: 0,
            blocks: 0,
            frames_per_block: 0,
            channel_depth: 0,
            wall_seconds: 0.0,
            simulated_link_seconds: 0.0,
            capture_cycles: 0,
            binner_cycles: 0,
            deconv_cycles: 0,
            saturation_events: 0,
            deconv_blocks_per_second: 0.0,
            deconv_mcells_per_second: 0.0,
            outcome: RunOutcome::Completed,
            errors: Vec::new(),
            faults: FaultCounts::default(),
            frames_quarantined: 0,
            deconv_fallbacks: 0,
            simd: ims_signal::simd::active_name().to_string(),
            sparse_blocks: 0,
            session: None,
            frames_over_latency_slo: 0,
            shard_rebuilds: 0,
            shards_lost: 0,
            lost_mz_ranges: Vec::new(),
            flight_dump: None,
            stages: Vec::new(),
        }
    }

    /// The report of the named stage, if present.
    pub fn stage(&self, name: &str) -> Option<&StageReport> {
        self.stages.iter().find(|s| s.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_through_json() {
        let mut r = PipelineReport::new("threaded");
        r.backend = "fpga-fwht".into();
        r.frames = 12;
        r.blocks = 3;
        r.deconv_blocks_per_second = 6.0;
        r.deconv_mcells_per_second = 1.5;
        r.stages.push(StageReport {
            name: "accumulate".into(),
            items_in: 12,
            items_out: 3,
            busy_seconds: 0.5,
            blocked_recv_seconds: Some(0.25),
            blocked_send_seconds: Some(0.125),
            queue_high_water: Some(4),
            latency_ns: Some(HistogramSummary {
                count: 12,
                sum: 18_000,
                min: 900,
                max: 2_100,
                mean: 1_500.0,
                p50: 1_400,
                p90: 2_000,
                p99: 2_100,
            }),
            cells: 750_000,
            items_per_second: 6.0,
            mcells_per_second: 1.5,
        });
        r.sparse_blocks = 2;
        let json = serde_json::to_string(&r).unwrap();
        let back: PipelineReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.backend, "fpga-fwht");
        // Provenance survives the round trip: the SIMD backend stamped at
        // construction and the sparse-block count.
        assert_eq!(back.simd, ims_signal::simd::active_name());
        assert_eq!(back.sparse_blocks, 2);
        assert_eq!(back.stages.len(), 1);
        let acc = back.stage("accumulate").unwrap();
        assert_eq!(acc.queue_high_water, Some(4));
        assert_eq!(acc.cells, 750_000);
        assert_eq!(acc.latency_ns.as_ref().unwrap().p99, 2_100);
        assert!((back.deconv_mcells_per_second - 1.5).abs() < 1e-12);
        assert!(back.stage("missing").is_none());
    }

    #[test]
    fn throughput_fields_default_when_absent() {
        // Reports serialized before the throughput fields existed must
        // still parse (serde defaults).
        let json = r#"{
            "name": "deconvolve", "items_in": 2, "items_out": 2,
            "busy_seconds": 0.1, "blocked_recv_seconds": 0.0,
            "blocked_send_seconds": 0.0, "queue_high_water": 1
        }"#;
        let s: StageReport = serde_json::from_str(json).unwrap();
        assert_eq!(s.cells, 0);
        assert_eq!(s.items_per_second, 0.0);
        assert_eq!(s.mcells_per_second, 0.0);
        assert_eq!(s.queue_high_water, Some(1));
        assert!(s.latency_ns.is_none());
    }

    #[test]
    fn legacy_reports_default_resilience_fields() {
        // A pre-supervision report (no outcome/errors/faults keys) parses
        // with a Completed verdict and zero counts.
        let json = r#"{
            "executor": "threaded", "backend": "fpga-fwht", "frames": 4,
            "blocks": 1, "frames_per_block": 4, "channel_depth": 4,
            "wall_seconds": 0.1, "simulated_link_seconds": 0.0,
            "capture_cycles": 1, "binner_cycles": 0, "deconv_cycles": 1,
            "saturation_events": 0, "stages": []
        }"#;
        let r: PipelineReport = serde_json::from_str(json).unwrap();
        assert_eq!(r.outcome, RunOutcome::Completed);
        assert!(r.errors.is_empty());
        assert_eq!(r.faults.total(), 0);
        assert_eq!(r.frames_quarantined, 0);
        assert_eq!(r.deconv_fallbacks, 0);
        assert_eq!(r.simd, "");
        assert_eq!(r.sparse_blocks, 0);
        assert_eq!(r.shard_rebuilds, 0);
        assert_eq!(r.shards_lost, 0);
        assert!(r.lost_mz_ranges.is_empty());
        // A clean report serializes an empty errors array and keeps the
        // verdict, and errors survive a round trip when present.
        let clean = serde_json::to_string(&PipelineReport::new("inline")).unwrap();
        assert!(clean.contains("\"errors\":[]"), "{clean}");
        assert!(clean.contains("\"outcome\""), "{clean}");
        let mut failed = PipelineReport::new("threaded");
        failed.outcome = RunOutcome::Failed;
        failed.errors.push(PipelineError::StageStalled {
            stage: "source".into(),
            timeout_ms: 100,
        });
        let json = serde_json::to_string(&failed).unwrap();
        let back: PipelineReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.outcome, RunOutcome::Failed);
        assert_eq!(back.errors, failed.errors);
    }

    #[test]
    fn inline_none_fields_are_omitted_from_json() {
        let s = StageReport {
            name: "link".into(),
            items_in: 5,
            items_out: 5,
            busy_seconds: 0.2,
            blocked_recv_seconds: None,
            blocked_send_seconds: None,
            queue_high_water: None,
            latency_ns: None,
            cells: 0,
            items_per_second: 25.0,
            mcells_per_second: 0.0,
        };
        let json = serde_json::to_string(&s).unwrap();
        assert!(!json.contains("queue_high_water"));
        assert!(!json.contains("blocked_recv_seconds"));
        assert!(!json.contains("blocked_send_seconds"));
        assert!(!json.contains("latency_ns"));
        // And the omitted keys read back as None.
        let back: StageReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.queue_high_water, None);
        assert_eq!(back.blocked_recv_seconds, None);
    }
}
