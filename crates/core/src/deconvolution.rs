//! Software deconvolution of acquired blocks — the floating-point reference
//! for every method the FPGA core implements, plus the methods only the
//! software side offers (exact/weighted Fourier inverses of the measured
//! kernel).

use crate::acquisition::{AcquiredData, GateSchedule};
use ims_physics::DriftTofMap;
use ims_prs::weighting::CirculantInverse;
use ims_prs::FastMTransform;
use serde::{Deserialize, Serialize};

/// A boxed per-column solver returned by [`Deconvolver::column_solver`].
pub type ColumnSolver<'a> = Box<dyn Fn(&[f64]) -> Vec<f64> + Send + Sync + 'a>;

/// A deconvolution method.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Deconvolver {
    /// No deconvolution: signal averaging already measures the arrival
    /// spectrum directly.
    Identity,
    /// The ideal fast Hadamard (simplex) inverse of the *design* sequence —
    /// `O(M log M)` per column; exactly what the FPGA core computes.
    /// Only valid for non-oversampled multiplexed schedules.
    SimplexFast,
    /// Exact Fourier inverse of the *effective* (measured) kernel. Fails on
    /// singular kernels (plain oversampled sequences).
    Exact,
    /// Tikhonov-weighted Fourier inverse of the effective kernel — the
    /// PNNL-enhanced deconvolution. `lambda` is the regularisation weight
    /// relative to the kernel's mean spectral power.
    Weighted {
        /// Relative regularisation strength (e.g. 1e-4).
        lambda: f64,
    },
    /// Tikhonov-weighted inverse of the *design* bits (no kernel
    /// calibration) — the ablation showing why the measured kernel matters.
    WeightedIdeal {
        /// Relative regularisation strength.
        lambda: f64,
    },
}

impl Deconvolver {
    /// Short display name.
    pub fn name(&self) -> String {
        match self {
            Deconvolver::Identity => "identity".into(),
            Deconvolver::SimplexFast => "simplex-fast".into(),
            Deconvolver::Exact => "exact-inverse".into(),
            Deconvolver::Weighted { lambda } => format!("weighted(λ={lambda})"),
            Deconvolver::WeightedIdeal { lambda } => format!("weighted-ideal(λ={lambda})"),
        }
    }

    /// Deconvolves every m/z column of the accumulated block via the
    /// batched panel engine ([`crate::deconv_batch::BatchDeconvolver`]).
    /// Bit-identical to the per-column reference
    /// (`apply_columnwise` + [`Deconvolver::column_solver`]), but
    /// cache-blocked and allocation-free in steady state.
    ///
    /// # Panics
    /// Panics if the method cannot be applied to the schedule (e.g.
    /// [`Deconvolver::SimplexFast`] on an oversampled schedule, or
    /// [`Deconvolver::Exact`] on a singular kernel).
    pub fn deconvolve(&self, schedule: &GateSchedule, data: &AcquiredData) -> DriftTofMap {
        crate::deconv_batch::BatchDeconvolver::new(self, schedule, data)
            .deconvolve_map(&data.accumulated)
    }

    /// Builds the per-column solver closure for this method — the scalar
    /// reference path the batched engine is verified against (and the
    /// baseline the `deconv` benchmarks time).
    pub fn column_solver<'a>(
        &self,
        schedule: &'a GateSchedule,
        data: &AcquiredData,
    ) -> ColumnSolver<'a> {
        match self {
            Deconvolver::Identity => Box::new(|col: &[f64]| col.to_vec()),
            Deconvolver::SimplexFast => {
                let seq = match schedule {
                    GateSchedule::Multiplexed { seq } => seq,
                    other => panic!(
                        "SimplexFast requires a non-oversampled multiplexed schedule, got {}",
                        other.name()
                    ),
                };
                let transform = FastMTransform::new(seq);
                Box::new(move |col: &[f64]| transform.deconvolve_convolution(col))
            }
            Deconvolver::Exact => {
                let inv = CirculantInverse::exact(&data.effective_kernel, 1e-9)
                    .expect("effective kernel is singular; use Weighted instead");
                Box::new(move |col: &[f64]| inv.apply(col))
            }
            Deconvolver::Weighted { lambda } => {
                let inv = CirculantInverse::weighted(
                    &data.effective_kernel,
                    scale_lambda(*lambda, &data.effective_kernel),
                );
                Box::new(move |col: &[f64]| inv.apply(col))
            }
            Deconvolver::WeightedIdeal { lambda } => {
                let bits: Vec<f64> = data
                    .schedule_bits
                    .iter()
                    .map(|&b| if b { 1.0 } else { 0.0 })
                    .collect();
                let inv = CirculantInverse::weighted(&bits, scale_lambda(*lambda, &bits));
                Box::new(move |col: &[f64]| inv.apply(col))
            }
        }
    }
}

/// Scales a relative λ by the kernel's mean spectral power so the knob is
/// dimensionless across sequence lengths and duty cycles.
pub(crate) fn scale_lambda(relative: f64, kernel: &[f64]) -> f64 {
    let power: f64 = kernel.iter().map(|v| v * v).sum::<f64>();
    relative * power.max(f64::MIN_POSITIVE)
}

/// Applies a column solver to every m/z column of a drift-major map.
pub fn apply_columnwise(map: &DriftTofMap, solver: impl Fn(&[f64]) -> Vec<f64>) -> DriftTofMap {
    let drift = map.drift_bins();
    let mz = map.mz_bins();
    let mut out = DriftTofMap::zeros(drift, mz);
    let mut column = vec![0.0; drift];
    for m in 0..mz {
        for (d, c) in column.iter_mut().enumerate() {
            *c = map.at(d, m);
        }
        let solved = solver(&column);
        debug_assert_eq!(solved.len(), drift);
        for (d, &v) in solved.iter().enumerate() {
            *out.at_mut(d, m) = v;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acquisition::{acquire, AcquireOptions};
    use ims_physics::{Instrument, Workload};
    use ims_signal::stats::pearson;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn acquire_small(
        degree: u32,
        frames: u64,
        defect: f64,
        use_trap: bool,
    ) -> (GateSchedule, AcquiredData) {
        let bins = (1usize << degree) - 1;
        let mut inst = Instrument::with_drift_bins(bins);
        inst.tof.n_bins = 150;
        inst.gate = ims_physics::gate::GateModel::with_defect_level(defect);
        let w = Workload::single_calibrant();
        let schedule = GateSchedule::multiplexed(degree);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let data = acquire(
            &inst,
            &w,
            &schedule,
            frames,
            AcquireOptions {
                use_trap,
                background_mean: 0.0,
            },
            &mut rng,
        );
        (schedule, data)
    }

    #[test]
    fn simplex_fast_recovers_truth_shape() {
        let (schedule, data) = acquire_small(7, 100, 0.0, false);
        let out = Deconvolver::SimplexFast.deconvolve(&schedule, &data);
        let got = out.total_ion_drift_profile();
        let truth = data.truth.total_ion_drift_profile();
        let r = pearson(&got, &truth);
        assert!(r > 0.99, "pearson {r}");
    }

    #[test]
    fn weighted_beats_simplex_on_defective_gate_with_trap() {
        // Gate defects + gap-dependent trap release make the effective
        // kernel differ from the design sequence; the kernel-aware weighted
        // inverse must reconstruct better.
        let (schedule, data) = acquire_small(7, 200, 0.4, true);
        let truth = data.truth.total_ion_drift_profile();
        let naive = Deconvolver::SimplexFast
            .deconvolve(&schedule, &data)
            .total_ion_drift_profile();
        let weighted = Deconvolver::Weighted { lambda: 1e-6 }
            .deconvolve(&schedule, &data)
            .total_ion_drift_profile();
        let r_naive = pearson(&naive, &truth);
        let r_weighted = pearson(&weighted, &truth);
        assert!(
            r_weighted > r_naive,
            "weighted {r_weighted} vs naive {r_naive}"
        );
    }

    #[test]
    fn exact_equals_weighted_at_zero_lambda() {
        let (schedule, data) = acquire_small(6, 50, 0.1, false);
        let a = Deconvolver::Exact.deconvolve(&schedule, &data);
        let b = Deconvolver::Weighted { lambda: 0.0 }.deconvolve(&schedule, &data);
        for (x, y) in a.data().iter().zip(b.data().iter()) {
            assert!((x - y).abs() < 1e-6 * (1.0 + x.abs()));
        }
    }

    #[test]
    fn identity_passes_through() {
        let (schedule, data) = acquire_small(5, 10, 0.1, false);
        let out = Deconvolver::Identity.deconvolve(&schedule, &data);
        assert_eq!(out.data(), data.accumulated.data());
    }

    #[test]
    #[should_panic(expected = "SimplexFast requires")]
    fn simplex_fast_rejects_sa_schedule() {
        let (_, data) = acquire_small(5, 1, 0.0, false);
        let sa = GateSchedule::signal_averaging(31);
        let _ = Deconvolver::SimplexFast.deconvolve(&sa, &data);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Deconvolver::Identity.name(), "identity");
        assert_eq!(Deconvolver::SimplexFast.name(), "simplex-fast");
        assert!(Deconvolver::Weighted { lambda: 1e-4 }
            .name()
            .contains("weighted"));
    }
}
