//! `htims-core` — simulation of data capture and signal processing for an
//! advanced (Hadamard-transform) ion mobility mass spectrometer.
//!
//! This crate reproduces the system described in Chavarría-Miranda, Clowers,
//! Anderson & Belov (SC'07): a hybrid application in which an FPGA component
//! performs data capture, accumulation, and PNNL-enhanced Hadamard-transform
//! deconvolution, while a CPU software component streams data in and
//! collects results. The instrument and the FPGA are themselves simulated
//! (see `ims-physics` and `ims-fpga`); this crate wires them into the full
//! data path and provides the floating-point software reference
//! implementation of every processing step.
//!
//! The main flow:
//!
//! 1. Build a [`acquisition::GateSchedule`] (signal averaging, classic
//!    multiplexed, or oversampled/modified multiplexed) and an
//!    `ims_physics::Instrument`.
//! 2. Run [`acquisition::acquire`] to produce an [`acquisition::AcquiredData`]
//!    block — the Poisson/ADC-sampled accumulated 2-D matrix, exactly what
//!    the FPGA's capture engine would hand to its deconvolution core.
//! 3. Deconvolve with a [`deconvolution::Deconvolver`] — the ideal fast
//!    Hadamard inverse or the weighted (PNNL-enhanced) inverse — either in
//!    software ([`parallel`] runs it across cores) or through the
//!    cycle-accounted FPGA model ([`hybrid`]).
//! 4. Score the result against ground truth with [`metrics`] and identify
//!    analytes with [`analysis`].
//!
//! # Example: one multiplexed acquisition, deconvolved and identified
//!
//! ```
//! use htims_core::acquisition::{acquire, AcquireOptions, GateSchedule};
//! use htims_core::analysis::{build_library, find_features, match_library};
//! use htims_core::deconvolution::Deconvolver;
//! use ims_physics::{Instrument, Workload};
//! use rand::SeedableRng;
//!
//! let mut instrument = Instrument::with_drift_bins(127); // PRS order 7
//! instrument.tof.n_bins = 300;
//! let workload = Workload::three_peptide_mix();
//! let schedule = GateSchedule::multiplexed(7);
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
//! let data = acquire(&instrument, &workload, &schedule, 30,
//!                    AcquireOptions::default(), &mut rng);
//! assert!(data.ion_utilization > 0.5); // trap + multiplexing
//!
//! let map = Deconvolver::Weighted { lambda: 1e-6 }.deconvolve(&schedule, &data);
//! let ids = match_library(
//!     &find_features(&map, 8.0),
//!     &build_library(&instrument, &workload),
//!     4,
//!     3,
//! );
//! assert!(!ids.is_empty());
//! ```

#![warn(missing_docs)]

pub mod acquisition;
pub mod analysis;
pub mod calibration;
pub mod capture;
pub mod config;
pub mod dda;
pub mod deconv_batch;
pub mod deconvolution;
pub mod dynamic;
pub mod fault;
pub mod format;
pub mod hybrid;
pub mod kernel;
pub mod lcms;
pub mod metrics;
pub mod msms;
pub mod parallel;
pub mod pipeline;

pub use acquisition::{acquire, AcquiredData, GateSchedule};
pub use config::ExperimentConfig;
pub use deconv_batch::BatchDeconvolver;
pub use deconvolution::Deconvolver;
