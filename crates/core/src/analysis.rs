//! Downstream analysis: 2-D feature finding on deconvolved maps and
//! library matching — the "collecting results" role of the paper's software
//! component, taken through to analyte identification.

use ims_physics::{DriftTofMap, Instrument, Workload};
use ims_signal::stats;
use serde::{Deserialize, Serialize};

/// A detected 2-D feature.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Feature {
    /// Drift bin of the local maximum.
    pub drift_bin: usize,
    /// m/z bin of the local maximum.
    pub mz_bin: usize,
    /// Intensity at the maximum.
    pub intensity: f64,
    /// Intensity over the map's robust noise floor.
    pub snr: f64,
    /// Sub-bin m/z position: intensity-weighted centroid over the 3×3
    /// neighbourhood, in fractional bins (enables ppm-level mass work on a
    /// coarse grid).
    pub mz_centroid: f64,
    /// Sub-bin drift position, fractional bins.
    pub drift_centroid: f64,
}

/// Finds local maxima above `k_sigma` robust σ of the map.
///
/// A cell is a feature when it exceeds the threshold and is the strict
/// maximum of its 3×3 neighbourhood (8-connected). Returns features sorted
/// by decreasing intensity.
pub fn find_features(map: &DriftTofMap, k_sigma: f64) -> Vec<Feature> {
    let data = map.data();
    // Floor σ so sparse/noise-free maps still produce finite, ordered SNRs.
    let sigma = stats::mad_sigma(data).max(1e-12);
    let base = stats::median(data);
    let threshold = base + k_sigma * sigma;
    let (dn, mn) = (map.drift_bins(), map.mz_bins());
    let mut features = Vec::new();
    for d in 1..dn.saturating_sub(1) {
        for m in 1..mn.saturating_sub(1) {
            let v = map.at(d, m);
            if v < threshold {
                continue;
            }
            let mut is_max = true;
            'scan: for dd in d - 1..=d + 1 {
                for mm in m - 1..=m + 1 {
                    if (dd, mm) == (d, m) {
                        continue;
                    }
                    let n = map.at(dd, mm);
                    if n > v || (n == v && (dd, mm) < (d, m)) {
                        is_max = false;
                        break 'scan;
                    }
                }
            }
            if is_max {
                // Intensity-weighted sub-bin centroids over the 3×3
                // neighbourhood (baseline-subtracted, clamped at zero).
                let mut wsum = 0.0;
                let mut dsum = 0.0;
                let mut msum = 0.0;
                for dd in d - 1..=d + 1 {
                    for mm in m - 1..=m + 1 {
                        let w = (map.at(dd, mm) - base).max(0.0);
                        wsum += w;
                        dsum += w * dd as f64;
                        msum += w * mm as f64;
                    }
                }
                let (drift_centroid, mz_centroid) = if wsum > 0.0 {
                    (dsum / wsum, msum / wsum)
                } else {
                    (d as f64, m as f64)
                };
                features.push(Feature {
                    drift_bin: d,
                    mz_bin: m,
                    intensity: v,
                    snr: (v - base) / sigma,
                    mz_centroid,
                    drift_centroid,
                });
            }
        }
    }
    features.sort_by(|a, b| {
        b.intensity
            .partial_cmp(&a.intensity)
            .expect("NaN intensity")
    });
    features
}

/// A library entry: where a known species is expected to appear.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LibraryEntry {
    /// Species name.
    pub name: String,
    /// Predicted drift bin.
    pub drift_bin: usize,
    /// Predicted m/z bin.
    pub mz_bin: usize,
    /// Source abundance (for detection-limit bookkeeping).
    pub abundance: f64,
}

/// Builds the prediction library for a workload on an instrument.
///
/// Species that fall outside the drift window or m/z range are skipped.
pub fn build_library(instrument: &Instrument, workload: &Workload) -> Vec<LibraryEntry> {
    workload
        .species
        .iter()
        .filter_map(|sp| {
            let t = instrument.tube.drift_time_s(sp);
            let drift_bin = (t / instrument.bin_width_s).round() as usize;
            if drift_bin >= instrument.drift_bins {
                return None;
            }
            let mz_bin = instrument.tof.bin_of(sp.mz())?;
            Some(LibraryEntry {
                name: sp.name.clone(),
                drift_bin,
                mz_bin,
                abundance: sp.abundance,
            })
        })
        .collect()
}

/// A matched identification.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Identification {
    /// The library entry matched.
    pub entry: LibraryEntry,
    /// The matched feature.
    pub feature: Feature,
    /// Drift error, bins.
    pub drift_error: i64,
    /// m/z error, bins.
    pub mz_error: i64,
}

/// Greedy nearest matching of features against a library within tolerances.
/// Each feature is used at most once; entries are matched in order of
/// decreasing feature intensity.
pub fn match_library(
    features: &[Feature],
    library: &[LibraryEntry],
    drift_tol: usize,
    mz_tol: usize,
) -> Vec<Identification> {
    let mut used = vec![false; features.len()];
    let mut out = Vec::new();
    for entry in library {
        let mut best: Option<(usize, u64)> = None;
        for (fi, f) in features.iter().enumerate() {
            if used[fi] {
                continue;
            }
            let dd = f.drift_bin.abs_diff(entry.drift_bin);
            let dm = f.mz_bin.abs_diff(entry.mz_bin);
            if dd <= drift_tol && dm <= mz_tol {
                let score = (dd * dd + dm * dm) as u64;
                if best.is_none_or(|(_, s)| score < s) {
                    best = Some((fi, score));
                }
            }
        }
        if let Some((fi, _)) = best {
            used[fi] = true;
            let f = features[fi];
            out.push(Identification {
                entry: entry.clone(),
                feature: f,
                drift_error: f.drift_bin as i64 - entry.drift_bin as i64,
                mz_error: f.mz_bin as i64 - entry.mz_bin as i64,
            });
        }
    }
    out
}

/// Fraction of library entries identified.
pub fn identification_rate(ids: &[Identification], library: &[LibraryEntry]) -> f64 {
    if library.is_empty() {
        return 0.0;
    }
    ids.len() as f64 / library.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acquisition::{acquire, AcquireOptions, GateSchedule};
    use crate::deconvolution::Deconvolver;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn finds_planted_2d_features() {
        let mut map = DriftTofMap::zeros(50, 40);
        *map.at_mut(10, 20) = 100.0;
        *map.at_mut(30, 5) = 60.0;
        // Ridge neighbours below the peaks.
        *map.at_mut(10, 21) = 40.0;
        *map.at_mut(11, 20) = 40.0;
        let features = find_features(&map, 5.0);
        assert_eq!(features.len(), 2);
        assert_eq!((features[0].drift_bin, features[0].mz_bin), (10, 20));
        assert_eq!((features[1].drift_bin, features[1].mz_bin), (30, 5));
        assert!(features[0].snr > features[1].snr);
    }

    #[test]
    fn centroids_track_sub_bin_asymmetry() {
        let mut map = DriftTofMap::zeros(20, 20);
        // Apex at (10, 10) with a heavier right shoulder in m/z and a
        // heavier lower shoulder in drift: centroid must shift that way.
        *map.at_mut(10, 10) = 100.0;
        *map.at_mut(10, 11) = 60.0;
        *map.at_mut(10, 9) = 20.0;
        *map.at_mut(11, 10) = 50.0;
        *map.at_mut(9, 10) = 10.0;
        let features = find_features(&map, 3.0);
        assert_eq!(features.len(), 1);
        let f = features[0];
        assert!(
            f.mz_centroid > 10.05 && f.mz_centroid < 10.5,
            "mz {}",
            f.mz_centroid
        );
        assert!(
            f.drift_centroid > 10.05 && f.drift_centroid < 10.5,
            "drift {}",
            f.drift_centroid
        );
    }

    #[test]
    fn symmetric_peak_centroids_at_bin_centre() {
        let mut map = DriftTofMap::zeros(20, 20);
        *map.at_mut(10, 10) = 100.0;
        for (d, m) in [(9, 10), (11, 10), (10, 9), (10, 11)] {
            *map.at_mut(d, m) = 40.0;
        }
        let f = find_features(&map, 3.0)[0];
        assert!((f.mz_centroid - 10.0).abs() < 1e-9);
        assert!((f.drift_centroid - 10.0).abs() < 1e-9);
    }

    #[test]
    fn plateau_produces_single_feature() {
        let mut map = DriftTofMap::zeros(20, 20);
        *map.at_mut(5, 5) = 10.0;
        *map.at_mut(5, 6) = 10.0;
        let features = find_features(&map, 3.0);
        assert_eq!(features.len(), 1);
    }

    #[test]
    fn library_matching_with_tolerance() {
        let features = vec![
            Feature {
                drift_bin: 100,
                mz_bin: 50,
                intensity: 10.0,
                snr: 20.0,
                mz_centroid: 50.0,
                drift_centroid: 100.0,
            },
            Feature {
                drift_bin: 200,
                mz_bin: 80,
                intensity: 5.0,
                snr: 10.0,
                mz_centroid: 80.0,
                drift_centroid: 200.0,
            },
        ];
        let library = vec![
            LibraryEntry {
                name: "a".into(),
                drift_bin: 102,
                mz_bin: 50,
                abundance: 1.0,
            },
            LibraryEntry {
                name: "b".into(),
                drift_bin: 300,
                mz_bin: 10,
                abundance: 1.0,
            },
        ];
        let ids = match_library(&features, &library, 3, 2);
        assert_eq!(ids.len(), 1);
        assert_eq!(ids[0].entry.name, "a");
        assert_eq!(ids[0].drift_error, -2);
        assert!((identification_rate(&ids, &library) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn each_feature_matched_once() {
        let features = vec![Feature {
            drift_bin: 100,
            mz_bin: 50,
            intensity: 10.0,
            snr: 20.0,
            mz_centroid: 50.0,
            drift_centroid: 100.0,
        }];
        let library = vec![
            LibraryEntry {
                name: "a".into(),
                drift_bin: 100,
                mz_bin: 50,
                abundance: 1.0,
            },
            LibraryEntry {
                name: "b".into(),
                drift_bin: 101,
                mz_bin: 50,
                abundance: 1.0,
            },
        ];
        let ids = match_library(&features, &library, 3, 2);
        assert_eq!(ids.len(), 1, "one feature cannot explain two entries");
    }

    #[test]
    fn end_to_end_identification_of_three_peptide_mix() {
        let mut inst = ims_physics::Instrument::with_drift_bins(255);
        inst.tof.n_bins = 400;
        let w = ims_physics::Workload::three_peptide_mix();
        let schedule = GateSchedule::multiplexed(8);
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let data = acquire(
            &inst,
            &w,
            &schedule,
            100,
            AcquireOptions::default(),
            &mut rng,
        );
        let deconvolved = Deconvolver::Weighted { lambda: 1e-5 }.deconvolve(&schedule, &data);
        let features = find_features(&deconvolved, 8.0);
        let library = build_library(&inst, &w);
        assert!(!library.is_empty());
        let ids = match_library(&features, &library, 4, 3);
        let rate = identification_rate(&ids, &library);
        assert!(
            rate > 0.6,
            "identified {}/{} library species",
            ids.len(),
            library.len()
        );
    }
}
