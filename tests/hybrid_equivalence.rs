//! Integration: the hybrid (threaded, FPGA-modelled) pipeline computes the
//! same numbers as the software reference — the central correctness claim
//! of the paper's architecture — and the design point is feasible on the
//! target device.

use htims::core::acquisition::{acquire, AcquireOptions, GateSchedule};
use htims::core::hybrid::{run_hybrid, run_software_reference, FrameGenerator, HybridConfig};
use htims::fpga::deconv::{Convention, DeconvConfig, DeconvCore};
use htims::fpga::{AccumulatorCore, DmaLink, FpgaDevice, ResourceReport};
use htims::physics::{Instrument, Workload};
use htims::prs::{FastMTransform, MSequence};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn generator(degree: u32, mz_bins: usize, seed: u64) -> (FrameGenerator, MSequence, Instrument) {
    let n = (1usize << degree) - 1;
    let mut inst = Instrument::with_drift_bins(n);
    inst.tof.n_bins = mz_bins;
    let workload = Workload::three_peptide_mix();
    let schedule = GateSchedule::multiplexed(degree);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let data = acquire(
        &inst,
        &workload,
        &schedule,
        1,
        AcquireOptions::default(),
        &mut rng,
    );
    let seq = MSequence::new(degree);
    (FrameGenerator::new(&data, &inst.adc, seed), seq, inst)
}

#[test]
fn hybrid_pipeline_is_bit_exact_across_channel_depths() {
    let (gen, seq, _) = generator(7, 60, 11);
    let reference = run_software_reference(&gen, &seq, 24, DeconvConfig::default());
    for depth in [1usize, 2, 8] {
        let cfg = HybridConfig {
            frames: 24,
            channel_depth: depth,
            ..Default::default()
        };
        let hybrid = run_hybrid(&gen, &seq, &cfg);
        assert_eq!(
            hybrid.deconvolved_raw, reference,
            "channel depth {depth} changed the result"
        );
    }
}

#[test]
fn fpga_fixed_point_matches_float_within_one_ulp() {
    let (gen, seq, _) = generator(8, 40, 12);
    let mut acc = AccumulatorCore::new(gen.drift_bins(), gen.mz_bins(), 32);
    for f in 0..16 {
        acc.capture_frame(&gen.frame(f)).unwrap();
    }
    let block = acc.drain();
    let core = DeconvCore::new(
        &seq,
        DeconvConfig {
            convention: Convention::Convolution,
            ..Default::default()
        },
    );
    let transform = FastMTransform::new(&seq);
    let n = seq.len();
    let mz = gen.mz_bins();
    let ulp = (2.0f64).powi(-16);
    for col in 0..mz {
        let column: Vec<u64> = (0..n).map(|d| block[d * mz + col]).collect();
        let column_f: Vec<f64> = column.iter().map(|&v| v as f64).collect();
        let fixed = core.to_f64(&core.deconvolve_column(&column));
        let float = transform.deconvolve_convolution(&column_f);
        for (d, (a, b)) in fixed.iter().zip(float.iter()).enumerate() {
            assert!(
                (a - b).abs() <= ulp,
                "col {col} bin {d}: fixed {a} vs float {b}"
            );
        }
    }
}

#[test]
fn canonical_design_point_is_viable_on_the_xd1() {
    let seq = MSequence::new(9);
    let acc = AccumulatorCore::new(511, 100, 32);
    let deconv = DeconvCore::new(&seq, DeconvConfig::default());
    let report = ResourceReport::evaluate(
        &FpgaDevice::xc2vp50(),
        &acc,
        &deconv,
        &DmaLink::rapidarray(),
        50,
        0.02,
    );
    assert!(report.viable(), "report: {report:?}");
    assert!(report.realtime_margin > 1.0);
}

#[test]
fn link_budget_detects_overload() {
    // Streaming raw (unaccumulated) extraction-rate data must overload the
    // link — the architectural justification for on-chip accumulation.
    let link = DmaLink::pci_x();
    let frame_bytes = 511 * 2000 * 4;
    assert!(!link.can_sustain(frame_bytes, 1000.0));
    assert!(link.can_sustain(frame_bytes, 10.0));
}

#[test]
fn hybrid_cycle_accounting_matches_model() {
    let (gen, seq, _) = generator(6, 30, 13);
    let cfg = HybridConfig {
        frames: 10,
        ..Default::default()
    };
    let hybrid = run_hybrid(&gen, &seq, &cfg);
    let acc = AccumulatorCore::new(gen.drift_bins(), gen.mz_bins(), 32);
    assert_eq!(hybrid.capture_cycles, acc.cycles_per_frame() * 10);
    let deconv = DeconvCore::new(&seq, cfg.deconv);
    assert_eq!(hybrid.deconv_cycles, deconv.cycles_per_block(gen.mz_bins()));
}
