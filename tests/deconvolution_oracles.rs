//! Cross-crate mathematical oracles: every deconvolution path (dense
//! matrix, fast Hadamard, Fourier circulant, FPGA integer) agrees on the
//! same data.

use htims::prs::weighting::CirculantInverse;
use htims::prs::{FastMTransform, MSequence, OversampledSequence, SimplexMatrix};
use htims::signal::correlate::{circular_convolve_direct, circular_convolve_fft};
use htims::signal::matrix::Matrix;

fn test_vector(n: usize, seed: u64) -> Vec<f64> {
    (0..n)
        .map(|k| (((k as u64).wrapping_mul(2654435761).wrapping_add(seed) % 1000) as f64) / 10.0)
        .collect()
}

#[test]
fn four_inverse_paths_agree() {
    for degree in [5u32, 7, 8] {
        let seq = MSequence::new(degree);
        let n = seq.len();
        let y = test_vector(n, degree as u64);

        // Path 1: dense closed-form inverse.
        let simplex = SimplexMatrix::new(seq.clone());
        let dense = simplex.inverse_dense().matvec(&y);
        // Path 2: O(N²) correlation form.
        let slow = simplex.inverse_apply(&y);
        // Path 3: fast Hadamard transform.
        let fast = FastMTransform::new(&seq).deconvolve(&y);
        // Path 4: dense LU inverse of the materialised matrix.
        let lu = simplex
            .to_dense()
            .inverse()
            .expect("simplex matrices are invertible")
            .matvec(&y);

        for j in 0..n {
            assert!((dense[j] - slow[j]).abs() < 1e-8, "deg {degree} bin {j}");
            assert!((dense[j] - fast[j]).abs() < 1e-8, "deg {degree} bin {j}");
            assert!((dense[j] - lu[j]).abs() < 1e-6, "deg {degree} bin {j}");
        }
    }
}

#[test]
fn fourier_inverse_agrees_with_fast_hadamard_for_convolution_data() {
    let seq = MSequence::new(7);
    let n = seq.len();
    let x = test_vector(n, 3);
    let h = seq.as_f64();
    let y = circular_convolve_direct(&h, &x);

    let via_hadamard = FastMTransform::new(&seq).deconvolve_convolution(&y);
    let via_fourier = CirculantInverse::exact(&h, 1e-9).unwrap().apply(&y);
    for j in 0..n {
        assert!(
            (via_hadamard[j] - via_fourier[j]).abs() < 1e-6,
            "bin {j}: {} vs {}",
            via_hadamard[j],
            via_fourier[j]
        );
        assert!(
            (via_hadamard[j] - x[j]).abs() < 1e-6,
            "bin {j} not recovered"
        );
    }
}

#[test]
fn modified_oversampled_sequence_round_trips_fine_structure() {
    // Plant structure at the *fine* time base — recoverable only because
    // the modified sequence restored invertibility.
    let base = MSequence::new(5);
    let oseq = OversampledSequence::modified_default(base, 3);
    let l = oseq.len();
    let mut x = vec![0.0; l];
    x[7] = 10.0;
    x[8] = 25.0; // adjacent fine bins — sub-element structure
    x[50] = 5.0;
    let h = oseq.as_f64();
    let y = circular_convolve_fft(&h, &x);
    let back = CirculantInverse::exact(&h, 0.5)
        .expect("modified sequence is invertible")
        .apply(&y);
    for j in 0..l {
        assert!(
            (back[j] - x[j]).abs() < 1e-6,
            "fine bin {j}: {} vs {}",
            back[j],
            x[j]
        );
    }
}

#[test]
fn plain_oversampling_cannot_recover_fine_structure() {
    let base = MSequence::new(5);
    let plain = OversampledSequence::repeat(base, 3);
    assert!(
        CirculantInverse::exact(&plain.as_f64(), 1e-6).is_none(),
        "plain repetition must be singular"
    );
}

#[test]
fn dense_circulant_solve_matches_fourier_weighted() {
    let seq = MSequence::new(4);
    let n = seq.len();
    let mut h = seq.as_f64();
    for (k, v) in h.iter_mut().enumerate() {
        *v *= 0.85 + 0.1 * ((k * 3) % 5) as f64 / 5.0; // non-ideal kernel
    }
    let x = test_vector(n, 9);
    let y = circular_convolve_direct(&h, &x);
    let lambda = 0.05;

    let fourier = CirculantInverse::weighted(&h, lambda).apply(&y);
    // Normal equations on the materialised circulant.
    let a = Matrix::from_fn(n, n, |i, j| h[(i + n - j) % n]);
    let dense = a.least_squares(&y, lambda).unwrap();
    for j in 0..n {
        assert!(
            (fourier[j] - dense[j]).abs() < 1e-8,
            "bin {j}: {} vs {}",
            fourier[j],
            dense[j]
        );
    }
}
