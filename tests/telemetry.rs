//! Reproducibility contract of the seeded stage graph: a [`GraphSpec`]
//! (including its `seed`) is the *whole* input, so two runs of the same
//! spec must produce bit-identical blocks and identical deterministic
//! metrics counts — the property `htims trace --seed` and the run ledger
//! lean on when comparing runs by config fingerprint.

use htims::graph::GraphSpec;
use htims::obs::metrics;

/// The metrics registry is process-global; serialize the tests in this
/// binary that reset and inspect it.
fn registry_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn spec(seed: u64) -> GraphSpec {
    GraphSpec {
        seed,
        // Inline executor: one thread, so even scheduling is identical.
        executor: "inline".into(),
        ..GraphSpec::small()
    }
}

/// `(index, frames, data)` of one deconvolved block.
type BlockData = (u64, u64, Vec<i64>);
/// `(metric name, deterministic count)`.
type MetricCount = (String, u64);

/// Time-driven series that are *not* part of the deterministic slice:
/// the continuous profiler charges wall-clock to tags at its own sample
/// cadence, and the scheduler's pop/park/steal/dwell accounting depends
/// on how the asynchronous pool races the run.
fn wall_clock_driven(name: &str) -> bool {
    name.starts_with("prof.") || name.starts_with("pipeline.cpu_ns.") || name.starts_with("sched.")
}

/// Runs a spec from a clean registry; returns the blocks plus the
/// deterministic slice of the metrics: every counter value and every
/// latency-histogram *count* (durations themselves are wall-clock noise,
/// as are the profiler/scheduler series — see [`wall_clock_driven`]).
fn run_counted(s: &GraphSpec) -> (Vec<BlockData>, Vec<MetricCount>) {
    metrics::reset();
    let out = s.run().expect("graph runs");
    let snap = metrics::snapshot();
    let mut counts: Vec<(String, u64)> = snap
        .counters
        .iter()
        .map(|c| (c.name.clone(), c.value))
        .chain(
            snap.histograms
                .iter()
                .map(|h| (format!("{}#count", h.name), h.summary.count)),
        )
        .filter(|(name, _)| !wall_clock_driven(name))
        .collect();
    counts.sort();
    let blocks = out
        .blocks
        .into_iter()
        .map(|b| (b.index, b.frames, b.data))
        .collect();
    (blocks, counts)
}

#[test]
fn same_seed_runs_are_bit_identical_with_identical_metric_counts() {
    let _lock = registry_lock();
    let (blocks_a, counts_a) = run_counted(&spec(42));
    let (blocks_b, counts_b) = run_counted(&spec(42));

    assert_eq!(
        blocks_a, blocks_b,
        "same seed must give bit-identical blocks"
    );
    assert_eq!(
        counts_a, counts_b,
        "same seed must give identical deterministic metrics counts"
    );
    // And the run actually counted something: the per-stage pipeline
    // counters fed by the executor meters are present and non-zero.
    let items: Vec<_> = counts_a
        .iter()
        .filter(|(name, _)| name.starts_with("pipeline.items_total."))
        .collect();
    assert!(
        !items.is_empty(),
        "stage item counters registered: {counts_a:?}"
    );
    assert!(items.iter().all(|(_, v)| *v > 0));
    let cells = counts_a
        .iter()
        .find(|(name, _)| name == "pipeline.cells_total.deconvolve")
        .map(|(_, v)| *v)
        .expect("deconvolve cells counter registered");
    let s = spec(42);
    assert_eq!(
        cells,
        (s.drift_bins() * s.mz * s.blocks) as u64,
        "deconvolve processes every cell of every block exactly once"
    );
}

#[test]
fn fault_and_recovery_events_surface_as_obs_counters() {
    let _lock = registry_lock();
    let chaotic = GraphSpec {
        // Rate sized to corrupt *some* frames of the small graph (~0.1
        // expected flips per 121k-bit frame): enough quarantining to
        // observe, enough clean frames that a block still reaches the
        // deconvolve stage and exercises the fallback.
        faults: Some("dma.bitflip=8e-7,deconv.fail=1".into()),
        ..spec(42)
    };
    let (_, counts) = run_counted(&chaotic);
    let get = |name: &str| {
        counts
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    assert!(get("fault.injected.bitflip") > 0, "{counts:?}");
    assert!(get("fault.injected.deconv_fail") > 0, "{counts:?}");
    assert!(
        get("fault.recovered.deconv_fallback") > 0,
        "hardware-backend failure must recover through the software engine"
    );
    assert!(get("pipeline.frames_quarantined") > 0, "{counts:?}");
    // A clean run of the same shape leaves every fault counter at zero
    // (the registry keeps registrations across resets, values must not).
    let (_, clean) = run_counted(&spec(42));
    for (name, value) in &clean {
        if name.starts_with("fault.") || name == "pipeline.frames_quarantined" {
            assert_eq!(*value, 0, "{name} leaked into a clean run");
        }
    }
}

#[test]
fn different_seeds_change_the_blocks() {
    let _lock = registry_lock();
    let (blocks_a, counts_a) = run_counted(&spec(42));
    let (blocks_b, counts_b) = run_counted(&spec(43));

    assert_ne!(blocks_a, blocks_b, "the seed must actually steer the data");
    // Shape-derived counts stay identical even when the data changes.
    assert_eq!(counts_a, counts_b);
}

#[test]
fn fingerprint_ignores_seed_but_tracks_shape() {
    let _lock = registry_lock();
    // Two runs of the same shape with different seeds are "the same
    // configuration" for ledger/compare purposes...
    assert_eq!(spec(1).fingerprint(), spec(2).fingerprint());
    // ...but a shape change re-keys them.
    let mut wider = spec(1);
    wider.mz += 1;
    assert_ne!(spec(1).fingerprint(), wider.fingerprint());
}
