//! End-to-end integration: instrument → multiplexed acquisition →
//! deconvolution → feature finding → identification.

use htims::core::acquisition::{acquire, AcquireOptions, GateSchedule};
use htims::core::analysis::{build_library, find_features, match_library};
use htims::core::deconvolution::Deconvolver;
use htims::core::metrics::{fidelity, species_snr};
use htims::physics::{Instrument, Workload};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

#[test]
fn three_peptide_mix_fully_identified() {
    let mut inst = Instrument::with_drift_bins(255);
    inst.tof.n_bins = 600;
    let workload = Workload::three_peptide_mix();
    let schedule = GateSchedule::multiplexed(8);
    let data = acquire(
        &inst,
        &workload,
        &schedule,
        80,
        AcquireOptions::default(),
        &mut rng(1),
    );
    let map = Deconvolver::Weighted { lambda: 1e-6 }.deconvolve(&schedule, &data);
    let features = find_features(&map, 8.0);
    let library = build_library(&inst, &workload);
    let ids = match_library(&features, &library, 4, 3);
    assert_eq!(
        ids.len(),
        library.len(),
        "all {} in-range species should be identified, got {}",
        library.len(),
        ids.len()
    );
    // Positions must be accurate to ~1 bin.
    for id in &ids {
        assert!(
            id.drift_error.abs() <= 2,
            "{}: drift err {}",
            id.entry.name,
            id.drift_error
        );
        assert!(
            id.mz_error.abs() <= 2,
            "{}: mz err {}",
            id.entry.name,
            id.mz_error
        );
    }
}

#[test]
fn multiplexing_beats_signal_averaging_on_dilute_sample() {
    let n = 255;
    let mut inst = Instrument::with_drift_bins(n);
    inst.tof.n_bins = 300;
    let workload = Workload::three_peptide_mix().scaled(2e-3);
    let target = build_library(&inst, &workload)
        .into_iter()
        .find(|e| e.name.contains("RPPGFSPFR/2+"))
        .unwrap();
    let opts = AcquireOptions {
        use_trap: false,
        background_mean: 0.05,
    };

    let sa_schedule = GateSchedule::signal_averaging(n);
    let sa = acquire(&inst, &workload, &sa_schedule, 100, opts, &mut rng(2));
    let sa_snr = species_snr(
        &Deconvolver::Identity.deconvolve(&sa_schedule, &sa),
        target.drift_bin,
        target.mz_bin,
        3,
    );

    let mp_schedule = GateSchedule::multiplexed(8);
    let mp = acquire(&inst, &workload, &mp_schedule, 100, opts, &mut rng(3));
    let mp_snr = species_snr(
        &Deconvolver::SimplexFast.deconvolve(&mp_schedule, &mp),
        target.drift_bin,
        target.mz_bin,
        3,
    );

    assert!(
        mp_snr > 3.0 * sa_snr,
        "multiplexing should win decisively: SA {sa_snr}, MP {mp_snr}"
    );
}

#[test]
fn all_deconvolvers_recover_truth_shape_on_clean_data() {
    let degree = 7;
    let n = (1usize << degree) - 1;
    let mut inst = Instrument::with_drift_bins(n);
    inst.tof.n_bins = 150;
    inst.gate = htims::physics::gate::GateModel::ideal();
    let workload = Workload::single_calibrant();
    let schedule = GateSchedule::multiplexed(degree);
    let data = acquire(
        &inst,
        &workload,
        &schedule,
        400,
        AcquireOptions {
            use_trap: false,
            background_mean: 0.0,
        },
        &mut rng(4),
    );
    let truth = data.truth.total_ion_drift_profile();
    for method in [
        Deconvolver::SimplexFast,
        Deconvolver::Exact,
        Deconvolver::Weighted { lambda: 1e-8 },
        Deconvolver::WeightedIdeal { lambda: 1e-8 },
    ] {
        let got = method
            .deconvolve(&schedule, &data)
            .total_ion_drift_profile();
        let f = fidelity(&got, &truth, 0.01);
        assert!(
            f.pearson > 0.995,
            "{}: pearson {}",
            method.name(),
            f.pearson
        );
    }
}

#[test]
fn oversampled_schedule_requires_weighted_inverse_and_works() {
    let degree = 6;
    let factor = 2;
    let schedule = GateSchedule::oversampled(degree, factor);
    let bins = schedule.len();
    let mut inst = Instrument::with_drift_bins(bins);
    inst.tof.n_bins = 150;
    let workload = Workload::single_calibrant();
    let data = acquire(
        &inst,
        &workload,
        &schedule,
        300,
        AcquireOptions::default(),
        &mut rng(5),
    );
    let truth = data.truth.total_ion_drift_profile();
    let got = Deconvolver::Weighted { lambda: 1e-6 }
        .deconvolve(&schedule, &data)
        .total_ion_drift_profile();
    let f = fidelity(&got, &truth, 0.01);
    assert!(f.pearson > 0.98, "pearson {}", f.pearson);
}

#[test]
fn acquisition_is_reproducible_from_seed() {
    let mut inst = Instrument::with_drift_bins(127);
    inst.tof.n_bins = 100;
    let workload = Workload::three_peptide_mix();
    let schedule = GateSchedule::multiplexed(7);
    let a = acquire(
        &inst,
        &workload,
        &schedule,
        10,
        AcquireOptions::default(),
        &mut rng(6),
    );
    let b = acquire(
        &inst,
        &workload,
        &schedule,
        10,
        AcquireOptions::default(),
        &mut rng(6),
    );
    assert_eq!(a.accumulated.data(), b.accumulated.data());
    assert_eq!(a.effective_kernel, b.effective_kernel);
}
