//! Integration: experiment configs serialise, rebuild the exact same
//! simulation objects, and drive reproducible acquisitions.

use htims::core::acquisition::acquire;
use htims::core::config::{ExperimentConfig, ScheduleSpec, WorkloadSpec};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn config_drives_identical_acquisitions() {
    let cfg = ExperimentConfig {
        sequence_degree: 6,
        mz_bins: 120,
        frames: 15,
        workload: WorkloadSpec::ThreePeptideMix,
        ..Default::default()
    };
    let run = |cfg: &ExperimentConfig| {
        let (inst, workload, schedule, opts) = cfg.build();
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        acquire(&inst, &workload, &schedule, cfg.frames, opts, &mut rng)
    };
    let a = run(&cfg);
    let json = cfg.to_json();
    let rebuilt = ExperimentConfig::from_json(&json).unwrap();
    let b = run(&rebuilt);
    assert_eq!(a.accumulated.data(), b.accumulated.data());
    assert_eq!(a.schedule_bits, b.schedule_bits);
}

#[test]
fn all_schedule_specs_build_consistently() {
    for schedule in [
        ScheduleSpec::SignalAveraging,
        ScheduleSpec::Multiplexed,
        ScheduleSpec::Oversampled { factor: 2 },
    ] {
        let cfg = ExperimentConfig {
            sequence_degree: 5,
            schedule,
            mz_bins: 50,
            ..Default::default()
        };
        let (inst, _, built_schedule, _) = cfg.build();
        assert_eq!(inst.drift_bins, built_schedule.len());
        assert_eq!(cfg.drift_bins(), built_schedule.len());
    }
}

#[test]
fn all_workload_specs_materialise() {
    for workload in [
        WorkloadSpec::SingleCalibrant,
        WorkloadSpec::ThreePeptideMix,
        WorkloadSpec::ComplexDigest {
            seed: 3,
            n_proteins: 2,
            abundance: 10.0,
        },
        WorkloadSpec::SpikedDigest {
            seed: 3,
            n_proteins: 2,
            matrix_abundance: 10.0,
            spikes: vec![0.1, 1.0],
        },
    ] {
        let w = workload.build();
        assert!(!w.is_empty(), "{workload:?} produced an empty workload");
        assert!(w.total_abundance() > 0.0);
    }
}

#[test]
fn different_seeds_produce_different_noise() {
    let cfg = ExperimentConfig {
        sequence_degree: 5,
        mz_bins: 60,
        frames: 5,
        ..Default::default()
    };
    let (inst, workload, schedule, opts) = cfg.build();
    let a = acquire(
        &inst,
        &workload,
        &schedule,
        cfg.frames,
        opts,
        &mut ChaCha8Rng::seed_from_u64(1),
    );
    let b = acquire(
        &inst,
        &workload,
        &schedule,
        cfg.frames,
        opts,
        &mut ChaCha8Rng::seed_from_u64(2),
    );
    assert_ne!(a.accumulated.data(), b.accumulated.data());
    // But the deterministic parts agree.
    assert_eq!(a.effective_kernel, b.effective_kernel);
    assert_eq!(a.expected.data(), b.expected.data());
}
