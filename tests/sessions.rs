//! Integration tests of the multi-tenant session multiplexer: admission
//! control, per-session seed reproducibility, and fault isolation between
//! tenants sharing one work-stealing pool.

use htims::core::fault::session_seed;
use htims::core::pipeline::{
    output_fingerprint, AdmissionError, Scheduler, SessionConfig, SessionManager, SessionState,
};
use htims::graph::GraphSpec;
use std::collections::BTreeMap;

fn tiny() -> GraphSpec {
    GraphSpec {
        frames: 4,
        blocks: 1,
        ..GraphSpec::small()
    }
}

fn config(spec: &GraphSpec, label: &str) -> SessionConfig {
    SessionConfig {
        label: label.to_string(),
        seed: spec.seed,
        fingerprint: spec.fingerprint(),
        fault_spec: spec.faults.clone(),
    }
}

/// Runs one batch of `n` sessions derived from `base_seed` and returns the
/// per-label output fingerprints.
fn run_batch(manager: &SessionManager, base_seed: u64, n: usize) -> BTreeMap<String, u64> {
    let mut handles = Vec::new();
    for i in 0..n {
        let spec = GraphSpec {
            seed: session_seed(base_seed, i as u64),
            executor: "scheduled".into(),
            ..tiny()
        };
        let pipeline = spec.build().expect("tiny spec builds");
        let handle = manager
            .admit(config(&spec, &format!("s{i}")), pipeline)
            .unwrap_or_else(|(e, _)| panic!("admission of s{i} failed: {e}"));
        handles.push(handle);
    }
    handles
        .into_iter()
        .map(|h| {
            let label = h.label().to_string();
            let out = h.join();
            assert_eq!(out.report.session.as_deref(), Some(label.as_str()));
            (label, output_fingerprint(&out.blocks))
        })
        .collect()
}

#[test]
fn same_base_seed_reproduces_every_session_bit_for_bit() {
    let manager = SessionManager::new(Scheduler::new(2), 8);
    let first = run_batch(&manager, 7, 4);
    let second = run_batch(&manager, 7, 4);
    assert_eq!(first.len(), 4);
    assert_eq!(first, second, "same base seed must reproduce each tenant");
    // Derived seeds differ per tenant, so the outputs do too.
    let distinct: std::collections::BTreeSet<u64> = first.values().copied().collect();
    assert_eq!(distinct.len(), 4, "tenant outputs collide: {first:?}");
    // A different base seed shifts every tenant.
    let other = run_batch(&manager, 8, 4);
    assert_ne!(first, other);
    // The table keeps the latest (finished) state of every label.
    let statuses = manager.statuses();
    assert_eq!(statuses.len(), 4);
    for row in statuses {
        assert_eq!(row.state, SessionState::Finished);
        assert_eq!(row.outcome.as_deref(), Some("completed"));
        assert!(row.output_fnv.is_some() && row.wall_seconds.is_some());
    }
    manager.scheduler().shutdown();
}

#[test]
fn admission_rejects_table_overflow_and_duplicate_labels() {
    let manager = SessionManager::new(Scheduler::new(1), 1);
    let spec = GraphSpec {
        executor: "scheduled".into(),
        ..tiny()
    };
    let first = manager
        .admit(config(&spec, "only"), spec.build().unwrap())
        .map_err(|(e, _)| e)
        .expect("first session admits");

    // The table is at its bound: the next admission is rejected with the
    // pipeline handed back intact.
    let Err((err, returned)) = manager.admit(config(&spec, "second"), spec.build().unwrap()) else {
        panic!("admission past the bound must be rejected")
    };
    assert_eq!(err, AdmissionError::TableFull { max: 1 });
    assert_eq!(manager.running(), 1);

    // Joining frees the slot; the returned pipeline is still runnable.
    let out = first.join();
    assert_eq!(out.report.outcome.as_str(), "completed");
    let second = manager
        .admit(config(&spec, "second"), returned)
        .map_err(|(e, _)| e)
        .expect("slot freed after join");

    // A label that is still running cannot be admitted twice...
    let Err((err, _)) = manager.admit(config(&spec, "second"), spec.build().unwrap()) else {
        panic!("a still-running label must be rejected")
    };
    assert_eq!(
        err,
        AdmissionError::DuplicateLabel {
            label: "second".into()
        }
    );
    assert!(second.join().report.errors.is_empty());

    // ...but a finished label is replaced (current state, not history).
    manager
        .admit(config(&spec, "second"), spec.build().unwrap())
        .map_err(|(e, _)| e)
        .expect("finished label is reusable")
        .join();
    manager.scheduler().shutdown();
}

#[test]
fn a_faulty_tenant_fails_alone_while_others_complete() {
    let manager = SessionManager::new(Scheduler::new(2), 8);
    let mut handles = Vec::new();
    for i in 0..4 {
        let mut spec = GraphSpec {
            seed: session_seed(7, i as u64),
            executor: "scheduled".into(),
            ..tiny()
        };
        if i == 1 {
            // One tenant's deconvolution backend fails deterministically on
            // every block.
            spec.faults = Some("deconv.fail=1".into());
        }
        let handle = manager
            .admit(config(&spec, &format!("s{i}")), spec.build().unwrap())
            .map_err(|(e, _)| e)
            .expect("admits");
        handles.push((i, handle));
    }
    for (i, handle) in handles {
        let out = handle.join();
        if i == 1 {
            // The faulty tenant is degraded (software fallback recovers the
            // blocks) — but never silently clean.
            assert_ne!(
                out.report.outcome.as_str(),
                "completed",
                "faulty tenant must not report a clean run"
            );
            assert!(out.report.faults.total() > 0);
        } else {
            assert_eq!(
                out.report.outcome.as_str(),
                "completed",
                "tenant s{i} was disturbed by s1's faults: {:?}",
                out.report.errors
            );
            assert!(out.report.errors.is_empty());
        }
    }
    manager.scheduler().shutdown();
}
